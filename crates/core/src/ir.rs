//! A versioned netlist IR: the serializable form of a [`Circuit`].
//!
//! Circuits normally exist only as in-process builder calls. The IR captures
//! everything the engines need — elaborated machines, instance overrides,
//! stimulus schedules, wire names/observation flags, and verification
//! queries — as plain data with a hand-rolled JSON form (the workspace has
//! no serde; see [`json`]) and a canonical content hash, so compiled
//! artifacts can be cached across requests (see [`CompiledCache`]) and
//! circuits can cross process boundaries.
//!
//! Round-tripping is lossless: `Circuit -> Ir -> Circuit` preserves node and
//! wire order exactly (both are semantic — the kernel breaks event ties on
//! node index), so simulation [`Events`](crate::events::Events) are
//! bit-identical.
//!
//! # Canonical hash
//!
//! [`Ir::content_hash`] is FNV-1a 64 over [`Ir::canonical_bytes`], a
//! normalized byte encoding:
//!
//! * the display `name` is metadata and is **excluded**;
//! * machines are encoded inline at each instance node, so the order of the
//!   machine table does not affect the hash;
//! * `-0.0` is normalized to `+0.0` before bit-encoding floats;
//! * queries are an unordered section: each query is encoded separately and
//!   the encodings are sorted before hashing;
//! * nodes and wires are ordered sections, encoded in place.
//!
//! Cache lookups compare the full canonical byte strings, not just the
//! 64-bit hash, so a hash collision can never alias two circuits.

use crate::circuit::{Circuit, Node, NodeId, NodeKind, NodeOverrides, WireData};
use crate::error::{DefinitionError, WiringError};
use crate::machine::{InputId, Machine, OutputId, StateId, Transition};
use std::fmt;
use std::sync::Arc;

pub mod json;

mod cache;
pub use cache::{CacheOutcome, CompiledCache};

use json::JsonValue;

/// The IR format version written by this crate and accepted on import.
pub const IR_VERSION: u32 = 1;

/// A serializable netlist: the complete structural description of a
/// [`Circuit`] plus optional verification queries.
#[derive(Debug, Clone, PartialEq)]
pub struct Ir {
    /// Format version ([`IR_VERSION`]).
    pub version: u32,
    /// Display name (metadata only — excluded from the content hash).
    pub name: String,
    /// Deduplicated machine table; instance nodes index into it.
    pub machines: Vec<IrMachine>,
    /// Nodes in circuit order (order is semantic: event ties break on node
    /// index).
    pub nodes: Vec<IrNode>,
    /// Wires in circuit order.
    pub wires: Vec<IrWire>,
    /// Verification queries (an unordered section of the hash).
    pub queries: Vec<IrQuery>,
}

/// An elaborated machine: the fully resolved transition system, not the
/// `EdgeDef` sugar it was defined with.
#[derive(Debug, Clone, PartialEq)]
pub struct IrMachine {
    /// Cell type name, e.g. `JTL`.
    pub name: String,
    /// Input symbol names `Σ`.
    pub inputs: Vec<String>,
    /// Output symbol names `Λ`.
    pub outputs: Vec<String>,
    /// State names `Q` (must contain `idle`, the initial state).
    pub states: Vec<String>,
    /// Default firing delay `τ_fire`.
    pub firing_delay: f64,
    /// Josephson-junction count (area metric).
    pub jjs: u32,
    /// Nominal setup time.
    pub setup_time: f64,
    /// Nominal hold time.
    pub hold_time: f64,
    /// Elaborated transitions; list position is the transition id.
    pub transitions: Vec<IrTransition>,
}

/// One elaborated transition of an [`IrMachine`]. All cross-references are
/// indices into the machine's `states` / `inputs` / `outputs` lists.
#[derive(Debug, Clone, PartialEq)]
pub struct IrTransition {
    /// Index of the source-language edge this was expanded from (feeds
    /// `definition_size` and diagnostics).
    pub def_index: usize,
    /// Source state index.
    pub src: usize,
    /// Triggering input index.
    pub trigger: usize,
    /// Destination state index.
    pub dst: usize,
    /// Priority among simultaneous triggers; lower wins.
    pub priority: u32,
    /// `τ_tran`: time for the transition to complete.
    pub transition_time: f64,
    /// `(output index, firing delay)` pairs.
    pub firing: Vec<(usize, f64)>,
    /// `(input index, required distance)` past constraints.
    pub past_constraints: Vec<(usize, f64)>,
}

/// Per-instance overrides, mirroring [`NodeOverrides`]. The serialized
/// machine is the *effective* (post-override) spec, so on import these are
/// stored verbatim and never re-applied.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IrOverrides {
    /// Firing-delay override recorded at instantiation.
    pub firing_delay: Option<f64>,
    /// Transition-time override recorded at instantiation.
    pub transition_time: Option<f64>,
    /// JJ-count override.
    pub jjs: Option<u32>,
    /// Exempt this instance from simulation-wide variability.
    pub exempt_from_variability: bool,
}

/// One node of the netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum IrNode {
    /// External stimulus: pulses at fixed, sorted, finite, non-negative
    /// times on the node's single output wire.
    Source {
        /// The pulse schedule.
        pulses: Vec<f64>,
    },
    /// A machine instance.
    Instance {
        /// Index into [`Ir::machines`].
        machine: usize,
        /// Instantiation overrides (informational; already applied to the
        /// referenced machine).
        overrides: IrOverrides,
    },
}

/// One wire of the netlist. `driver: None` encodes a retired loopback
/// placeholder (the builder's [`Circuit::loopback_wire`] after
/// [`Circuit::close_loop`]), kept so wire indices round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct IrWire {
    /// Wire name (auto-generated `_N` names included).
    pub name: String,
    /// True if the wire appears in simulation events.
    pub observed: bool,
    /// `(node, output port)` driving the wire, or `None` for a retired
    /// loopback placeholder.
    pub driver: Option<(usize, usize)>,
    /// `(node, input port)` reading the wire, if any.
    pub sink: Option<(usize, usize)>,
}

/// A verification query carried alongside the netlist, consumed by the
/// model checker (`rlse-ta` decodes these into `McQuery` values).
#[derive(Debug, Clone, PartialEq)]
pub enum IrQuery {
    /// Table 3, Query 2: no machine can reach the error state.
    NoErrorState,
    /// Table 3, Query 1: each listed output pulses only at (approximately)
    /// the listed times.
    OutputsOnlyAt {
        /// `(output wire name, expected pulse times)` pairs.
        outputs: Vec<(String, Vec<f64>)>,
    },
}

/// Why an IR could not be produced, parsed, or imported.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IrError {
    /// The JSON text did not parse.
    Json(json::JsonError),
    /// The JSON parsed but does not have the IR shape.
    Malformed(String),
    /// The document's `version` is not [`IR_VERSION`].
    Version {
        /// The version found in the document.
        found: u32,
    },
    /// The circuit contains a behavioral hole, which has no serializable
    /// form (holes are arbitrary host functions).
    UnsupportedHole {
        /// The hole's name.
        name: String,
    },
    /// The circuit has a loopback wire that was never closed.
    PendingLoopback {
        /// The placeholder wire's name.
        wire: String,
    },
    /// A machine in the document failed re-validation.
    Definition(DefinitionError),
    /// The netlist wiring is inconsistent (bad stimulus, unconnected input,
    /// duplicate observed name, ...).
    Wiring(WiringError),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Json(e) => write!(f, "{e}"),
            IrError::Malformed(msg) => write!(f, "malformed IR document: {msg}"),
            IrError::Version { found } => write!(
                f,
                "unsupported IR version {found} (this build reads version {IR_VERSION})"
            ),
            IrError::UnsupportedHole { name } => write!(
                f,
                "circuit contains behavioral hole '{name}', which cannot be serialized"
            ),
            IrError::PendingLoopback { wire } => write!(
                f,
                "circuit has a pending loopback wire '{wire}' that was never closed"
            ),
            IrError::Definition(e) => write!(f, "{e}"),
            IrError::Wiring(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IrError {}

impl From<json::JsonError> for IrError {
    fn from(e: json::JsonError) -> Self {
        IrError::Json(e)
    }
}
impl From<DefinitionError> for IrError {
    fn from(e: DefinitionError) -> Self {
        IrError::Definition(e)
    }
}
impl From<WiringError> for IrError {
    fn from(e: WiringError) -> Self {
        IrError::Wiring(e)
    }
}

impl IrMachine {
    fn from_machine(m: &Machine) -> IrMachine {
        IrMachine {
            name: m.name().to_string(),
            inputs: m.inputs().to_vec(),
            outputs: m.outputs().to_vec(),
            states: m.states().to_vec(),
            firing_delay: m.firing_delay(),
            jjs: m.jjs(),
            setup_time: m.setup_time(),
            hold_time: m.hold_time(),
            transitions: m
                .transitions()
                .iter()
                .map(|t| IrTransition {
                    def_index: t.def_index,
                    src: t.src.0,
                    trigger: t.trigger.0,
                    dst: t.dst.0,
                    priority: t.priority,
                    transition_time: t.transition_time,
                    firing: t.firing.iter().map(|&(o, d)| (o.0, d)).collect(),
                    past_constraints: t
                        .past_constraints
                        .iter()
                        .map(|&(i, d)| (i.0, d))
                        .collect(),
                })
                .collect(),
        }
    }

    fn to_machine(&self) -> Result<Arc<Machine>, IrError> {
        let transitions: Vec<Transition> = self
            .transitions
            .iter()
            .enumerate()
            .map(|(i, t)| Transition {
                id: i,
                def_index: t.def_index,
                src: StateId(t.src),
                trigger: InputId(t.trigger),
                dst: StateId(t.dst),
                priority: t.priority,
                transition_time: t.transition_time,
                firing: t.firing.iter().map(|&(o, d)| (OutputId(o), d)).collect(),
                past_constraints: t
                    .past_constraints
                    .iter()
                    .map(|&(i, d)| (InputId(i), d))
                    .collect(),
            })
            .collect();
        Ok(Machine::from_parts(crate::machine::MachineParts {
            name: self.name.clone(),
            inputs: self.inputs.clone(),
            outputs: self.outputs.clone(),
            states: self.states.clone(),
            transitions,
            firing_delay: self.firing_delay,
            jjs: self.jjs,
            setup_time: self.setup_time,
            hold_time: self.hold_time,
        })?)
    }
}

impl Ir {
    /// Serialize a circuit.
    ///
    /// # Errors
    ///
    /// * [`IrError::UnsupportedHole`] — the circuit contains a behavioral
    ///   hole (an arbitrary host function; not serializable).
    /// * [`IrError::PendingLoopback`] — a loopback wire was never closed.
    pub fn from_circuit(c: &Circuit) -> Result<Ir, IrError> {
        let mut machines: Vec<IrMachine> = Vec::new();
        let mut nodes = Vec::with_capacity(c.nodes.len());
        for n in &c.nodes {
            match &n.kind {
                NodeKind::Source { pulses } => nodes.push(IrNode::Source {
                    pulses: pulses.clone(),
                }),
                NodeKind::Machine { spec, overrides } => {
                    let im = IrMachine::from_machine(spec);
                    let machine = match machines.iter().position(|m| *m == im) {
                        Some(i) => i,
                        None => {
                            machines.push(im);
                            machines.len() - 1
                        }
                    };
                    nodes.push(IrNode::Instance {
                        machine,
                        overrides: IrOverrides {
                            firing_delay: overrides.firing_delay,
                            transition_time: overrides.transition_time,
                            jjs: overrides.jjs,
                            exempt_from_variability: overrides.exempt_from_variability,
                        },
                    });
                }
                NodeKind::Hole(h) => {
                    return Err(IrError::UnsupportedHole {
                        name: h.name().to_string(),
                    })
                }
            }
        }
        let mut wires = Vec::with_capacity(c.wires.len());
        for w in &c.wires {
            let driver = if w.driver.0 == NodeId(usize::MAX) {
                if w.sink.is_some() {
                    return Err(IrError::PendingLoopback {
                        wire: w.name.clone(),
                    });
                }
                None
            } else {
                Some((w.driver.0 .0, w.driver.1))
            };
            wires.push(IrWire {
                name: w.name.clone(),
                observed: w.observed,
                driver,
                sink: w.sink.map(|(n, p)| (n.0, p)),
            });
        }
        Ok(Ir {
            version: IR_VERSION,
            name: String::new(),
            machines,
            nodes,
            wires,
            queries: Vec::new(),
        })
    }

    /// Set the display name (builder style).
    #[must_use]
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Rebuild the circuit this IR describes. Node and wire order are
    /// reproduced exactly, so simulation events are bit-identical to the
    /// exported circuit's.
    ///
    /// # Errors
    ///
    /// * [`IrError::Version`] — written by a different format version.
    /// * [`IrError::Definition`] — a machine failed re-validation.
    /// * [`IrError::Wiring`] — inconsistent wiring: bad stimulus times, a
    ///   port left unconnected or doubly driven, duplicate observed names,
    ///   or a pending loopback.
    /// * [`IrError::Malformed`] — dangling node/machine indices.
    pub fn to_circuit(&self) -> Result<Circuit, IrError> {
        if self.version != IR_VERSION {
            return Err(IrError::Version {
                found: self.version,
            });
        }
        let specs: Vec<Arc<Machine>> = self
            .machines
            .iter()
            .map(|m| m.to_machine())
            .collect::<Result<_, _>>()?;

        // Per-node expected port arities and wire slots.
        let mut out_slots: Vec<Vec<Option<usize>>> = Vec::with_capacity(self.nodes.len());
        let mut in_slots: Vec<Vec<Option<usize>>> = Vec::with_capacity(self.nodes.len());
        for (ni, n) in self.nodes.iter().enumerate() {
            let (n_out, n_in) = match n {
                IrNode::Source { pulses } => {
                    for &t in pulses {
                        if !(t.is_finite() && t >= 0.0) {
                            return Err(IrError::Wiring(WiringError::InvalidStimulus {
                                wire: format!("source node {ni}"),
                                reason: format!(
                                    "pulse time {t} must be finite and non-negative"
                                ),
                            }));
                        }
                    }
                    if pulses.windows(2).any(|w| w[0] > w[1]) {
                        return Err(IrError::Wiring(WiringError::InvalidStimulus {
                            wire: format!("source node {ni}"),
                            reason: "pulse times must be sorted non-decreasing".into(),
                        }));
                    }
                    (1, 0)
                }
                IrNode::Instance { machine, .. } => {
                    let spec = specs.get(*machine).ok_or_else(|| {
                        IrError::Malformed(format!(
                            "node {ni} references machine {machine}, but only {} machines \
                             are defined",
                            specs.len()
                        ))
                    })?;
                    (spec.outputs().len(), spec.inputs().len())
                }
            };
            out_slots.push(vec![None; n_out]);
            in_slots.push(vec![None; n_in]);
        }

        for (wi, w) in self.wires.iter().enumerate() {
            if let Some((n, p)) = w.driver {
                let slots = out_slots.get_mut(n).ok_or_else(|| {
                    IrError::Malformed(format!("wire '{}' driven by unknown node {n}", w.name))
                })?;
                let slot = slots.get_mut(p).ok_or_else(|| {
                    IrError::Malformed(format!(
                        "wire '{}' driven by node {n} port {p}, which is out of range",
                        w.name
                    ))
                })?;
                if slot.is_some() {
                    return Err(IrError::Wiring(WiringError::AlreadyDriven {
                        wire: w.name.clone(),
                    }));
                }
                *slot = Some(wi);
            } else if w.sink.is_some() {
                return Err(IrError::PendingLoopback {
                    wire: w.name.clone(),
                });
            }
            if let Some((n, p)) = w.sink {
                let slots = in_slots.get_mut(n).ok_or_else(|| {
                    IrError::Malformed(format!("wire '{}' read by unknown node {n}", w.name))
                })?;
                let slot = slots.get_mut(p).ok_or_else(|| {
                    IrError::Malformed(format!(
                        "wire '{}' read by node {n} port {p}, which is out of range",
                        w.name
                    ))
                })?;
                if slot.is_some() {
                    return Err(IrError::Wiring(WiringError::FanoutViolation {
                        wire: w.name.clone(),
                    }));
                }
                *slot = Some(wi);
            }
        }

        let mut nodes = Vec::with_capacity(self.nodes.len());
        for (ni, n) in self.nodes.iter().enumerate() {
            let out_wires: Vec<usize> = out_slots[ni]
                .iter()
                .enumerate()
                .map(|(p, s)| {
                    s.ok_or_else(|| {
                        IrError::Malformed(format!("node {ni} output port {p} drives no wire"))
                    })
                })
                .collect::<Result<_, _>>()?;
            let in_wires: Vec<usize> = in_slots[ni]
                .iter()
                .enumerate()
                .map(|(p, s)| {
                    s.ok_or_else(|| {
                        IrError::Wiring(WiringError::Unconnected {
                            node: format!("#{ni}"),
                            port: format!("#{p}"),
                        })
                    })
                })
                .collect::<Result<_, _>>()?;
            let kind = match n {
                IrNode::Source { pulses } => NodeKind::Source {
                    pulses: pulses.clone(),
                },
                IrNode::Instance { machine, overrides } => NodeKind::Machine {
                    spec: Arc::clone(&specs[*machine]),
                    overrides: NodeOverrides {
                        firing_delay: overrides.firing_delay,
                        transition_time: overrides.transition_time,
                        jjs: overrides.jjs,
                        exempt_from_variability: overrides.exempt_from_variability,
                    },
                },
            };
            nodes.push(Node {
                kind,
                out_wires,
                in_wires,
            });
        }

        let wires: Vec<WireData> = self
            .wires
            .iter()
            .map(|w| WireData {
                name: w.name.clone(),
                observed: w.observed,
                driver: w
                    .driver
                    .map(|(n, p)| (NodeId(n), p))
                    .unwrap_or((NodeId(usize::MAX), 0)),
                sink: w.sink.map(|(n, p)| (NodeId(n), p)),
            })
            .collect();

        // Seed auto-naming past any `_N` names already present.
        let anon_counter = wires
            .iter()
            .filter_map(|w| w.name.strip_prefix('_').and_then(|s| s.parse::<usize>().ok()))
            .map(|n| n + 1)
            .max()
            .unwrap_or(0);

        let circuit = Circuit::from_parts(nodes, wires, anon_counter);
        circuit.check()?;
        Ok(circuit)
    }

    // ------------------------------------------------------------------
    // JSON
    // ------------------------------------------------------------------

    /// The document as a [`JsonValue`] tree (keys in a fixed order, so the
    /// rendering is byte-stable).
    pub fn to_value(&self) -> JsonValue {
        use JsonValue as J;
        let num = |n: usize| J::Num(n as f64);
        let pair_list = |ps: &[(usize, f64)]| {
            J::Arr(
                ps.iter()
                    .map(|&(i, d)| J::Arr(vec![num(i), J::Num(d)]))
                    .collect(),
            )
        };
        let machines = self
            .machines
            .iter()
            .map(|m| {
                J::Obj(vec![
                    ("name".into(), J::Str(m.name.clone())),
                    (
                        "inputs".into(),
                        J::Arr(m.inputs.iter().map(|s| J::Str(s.clone())).collect()),
                    ),
                    (
                        "outputs".into(),
                        J::Arr(m.outputs.iter().map(|s| J::Str(s.clone())).collect()),
                    ),
                    (
                        "states".into(),
                        J::Arr(m.states.iter().map(|s| J::Str(s.clone())).collect()),
                    ),
                    ("firing_delay".into(), J::Num(m.firing_delay)),
                    ("jjs".into(), J::Num(m.jjs as f64)),
                    ("setup_time".into(), J::Num(m.setup_time)),
                    ("hold_time".into(), J::Num(m.hold_time)),
                    (
                        "transitions".into(),
                        J::Arr(
                            m.transitions
                                .iter()
                                .map(|t| {
                                    J::Obj(vec![
                                        ("def".into(), num(t.def_index)),
                                        ("src".into(), num(t.src)),
                                        ("trigger".into(), num(t.trigger)),
                                        ("dst".into(), num(t.dst)),
                                        ("priority".into(), J::Num(t.priority as f64)),
                                        ("transition_time".into(), J::Num(t.transition_time)),
                                        ("firing".into(), pair_list(&t.firing)),
                                        ("past".into(), pair_list(&t.past_constraints)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let nodes = self
            .nodes
            .iter()
            .map(|n| match n {
                IrNode::Source { pulses } => J::Obj(vec![
                    ("kind".into(), J::Str("source".into())),
                    (
                        "pulses".into(),
                        J::Arr(pulses.iter().map(|&t| J::Num(t)).collect()),
                    ),
                ]),
                IrNode::Instance { machine, overrides } => {
                    let mut fields = vec![
                        ("kind".into(), J::Str("cell".into())),
                        ("machine".into(), num(*machine)),
                    ];
                    if let Some(d) = overrides.firing_delay {
                        fields.push(("firing_delay".into(), J::Num(d)));
                    }
                    if let Some(t) = overrides.transition_time {
                        fields.push(("transition_time".into(), J::Num(t)));
                    }
                    if let Some(j) = overrides.jjs {
                        fields.push(("jjs".into(), J::Num(j as f64)));
                    }
                    if overrides.exempt_from_variability {
                        fields.push(("exempt".into(), J::Bool(true)));
                    }
                    J::Obj(fields)
                }
            })
            .collect();
        let wires = self
            .wires
            .iter()
            .map(|w| {
                let mut fields = vec![
                    ("name".into(), J::Str(w.name.clone())),
                    ("observed".into(), J::Bool(w.observed)),
                ];
                if let Some((n, p)) = w.driver {
                    fields.push(("driver".into(), J::Arr(vec![num(n), num(p)])));
                }
                if let Some((n, p)) = w.sink {
                    fields.push(("sink".into(), J::Arr(vec![num(n), num(p)])));
                }
                J::Obj(fields)
            })
            .collect();
        let queries = self
            .queries
            .iter()
            .map(|q| match q {
                IrQuery::NoErrorState => J::Obj(vec![(
                    "kind".into(),
                    J::Str("no_error_state".into()),
                )]),
                IrQuery::OutputsOnlyAt { outputs } => J::Obj(vec![
                    ("kind".into(), J::Str("outputs_only_at".into())),
                    (
                        "outputs".into(),
                        J::Arr(
                            outputs
                                .iter()
                                .map(|(name, times)| {
                                    J::Arr(vec![
                                        J::Str(name.clone()),
                                        J::Arr(times.iter().map(|&t| J::Num(t)).collect()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            })
            .collect();
        J::Obj(vec![
            ("version".into(), J::Num(self.version as f64)),
            ("name".into(), J::Str(self.name.clone())),
            ("machines".into(), J::Arr(machines)),
            ("nodes".into(), J::Arr(nodes)),
            ("wires".into(), J::Arr(wires)),
            ("queries".into(), J::Arr(queries)),
        ])
    }

    /// Pretty multi-line JSON (the golden-fixture form), with a trailing
    /// newline. Byte-stable for equal IRs.
    pub fn to_json(&self) -> String {
        let mut s = self.to_value().to_pretty();
        s.push('\n');
        s
    }

    /// Parse an IR document from JSON text (either rendering).
    ///
    /// # Errors
    ///
    /// [`IrError::Json`] when the text is not JSON; [`IrError::Malformed`]
    /// when it is JSON of the wrong shape; [`IrError::Version`] on a format
    /// version mismatch.
    pub fn from_json(s: &str) -> Result<Ir, IrError> {
        Self::from_value(&JsonValue::parse(s)?)
    }

    /// Decode an IR document from an already-parsed [`JsonValue`].
    ///
    /// # Errors
    ///
    /// See [`Ir::from_json`].
    pub fn from_value(v: &JsonValue) -> Result<Ir, IrError> {
        let version = get_u32(v, "version", "document")?;
        if version != IR_VERSION {
            return Err(IrError::Version { found: version });
        }
        let name = get_str(v, "name", "document")?.to_string();
        let machines: Vec<IrMachine> = get_arr(v, "machines", "document")?
            .iter()
            .enumerate()
            .map(|(i, m)| parse_machine(m, i))
            .collect::<Result<_, _>>()?;
        let nodes: Vec<IrNode> = get_arr(v, "nodes", "document")?
            .iter()
            .enumerate()
            .map(|(i, n)| parse_node(n, i))
            .collect::<Result<_, _>>()?;
        // Machine indices are range-checked here so every decoded `Ir` can
        // be hashed: `canonical_bytes` inlines the referenced machine and
        // must never see a dangling index from untrusted input.
        for (i, n) in nodes.iter().enumerate() {
            if let IrNode::Instance { machine, .. } = n {
                if *machine >= machines.len() {
                    return Err(IrError::Malformed(format!(
                        "node {i} references machine {machine}, but only {} machines \
                         are defined",
                        machines.len()
                    )));
                }
            }
        }
        let wires = get_arr(v, "wires", "document")?
            .iter()
            .enumerate()
            .map(|(i, w)| parse_wire(w, i))
            .collect::<Result<_, _>>()?;
        let queries = get_arr(v, "queries", "document")?
            .iter()
            .enumerate()
            .map(|(i, q)| parse_query(q, i))
            .collect::<Result<_, _>>()?;
        Ok(Ir {
            version,
            name,
            machines,
            nodes,
            wires,
            queries,
        })
    }

    // ------------------------------------------------------------------
    // Canonical encoding and hash
    // ------------------------------------------------------------------

    /// The normalized byte encoding hashed by [`content_hash`]
    /// (see the module docs for the canonicalization rules). Cache entries
    /// compare these bytes exactly, so the 64-bit hash can never alias.
    ///
    /// # Panics
    ///
    /// If an instance node references a machine index outside
    /// [`Ir::machines`]. Decoded documents can never trigger this
    /// ([`Ir::from_value`] range-checks machine indices); only a hand-built
    /// `Ir` with a dangling index can.
    ///
    /// [`content_hash`]: Ir::content_hash
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.bytes(b"RLSE-IR");
        e.u32(self.version);
        e.u64(self.nodes.len() as u64);
        for n in &self.nodes {
            match n {
                IrNode::Source { pulses } => {
                    e.u8(1);
                    e.u64(pulses.len() as u64);
                    for &t in pulses {
                        e.f64(t);
                    }
                }
                IrNode::Instance { machine, overrides } => {
                    e.u8(2);
                    // Inline the machine's content so machine-table order
                    // never affects the hash.
                    e.machine(&self.machines[*machine]);
                    e.opt_f64(overrides.firing_delay);
                    e.opt_f64(overrides.transition_time);
                    match overrides.jjs {
                        Some(j) => {
                            e.u8(1);
                            e.u32(j);
                        }
                        None => e.u8(0),
                    }
                    e.u8(overrides.exempt_from_variability as u8);
                }
            }
        }
        e.u64(self.wires.len() as u64);
        for w in &self.wires {
            e.str(&w.name);
            e.u8(w.observed as u8);
            e.opt_port(w.driver);
            e.opt_port(w.sink);
        }
        // Queries are an unordered section: sort their encodings.
        let mut encoded: Vec<Vec<u8>> = self
            .queries
            .iter()
            .map(|q| {
                let mut qe = Enc::default();
                match q {
                    IrQuery::NoErrorState => qe.u8(1),
                    IrQuery::OutputsOnlyAt { outputs } => {
                        qe.u8(2);
                        qe.u64(outputs.len() as u64);
                        for (name, times) in outputs {
                            qe.str(name);
                            qe.u64(times.len() as u64);
                            for &t in times {
                                qe.f64(t);
                            }
                        }
                    }
                }
                qe.buf
            })
            .collect();
        encoded.sort();
        e.u64(encoded.len() as u64);
        for q in encoded {
            e.u64(q.len() as u64);
            e.bytes(&q);
        }
        e.buf
    }

    /// FNV-1a 64 over [`canonical_bytes`](Ir::canonical_bytes): the cache
    /// key. Stable across processes and platforms.
    ///
    /// # Panics
    ///
    /// See [`Ir::canonical_bytes`].
    pub fn content_hash(&self) -> u64 {
        fnv1a(&self.canonical_bytes())
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte string (the same constants as the compiled
/// kernel's symbol interner).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Canonical byte encoder: little-endian fixed-width scalars,
/// length-prefixed strings, `-0.0` normalized to `+0.0`.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        let norm = if v == 0.0 { 0.0 } else { v };
        self.bytes(&norm.to_bits().to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
            None => self.u8(0),
        }
    }
    fn opt_port(&mut self, v: Option<(usize, usize)>) {
        match v {
            Some((n, p)) => {
                self.u8(1);
                self.u64(n as u64);
                self.u64(p as u64);
            }
            None => self.u8(0),
        }
    }
    fn machine(&mut self, m: &IrMachine) {
        self.str(&m.name);
        self.u64(m.inputs.len() as u64);
        for s in &m.inputs {
            self.str(s);
        }
        self.u64(m.outputs.len() as u64);
        for s in &m.outputs {
            self.str(s);
        }
        self.u64(m.states.len() as u64);
        for s in &m.states {
            self.str(s);
        }
        self.f64(m.firing_delay);
        self.u32(m.jjs);
        self.f64(m.setup_time);
        self.f64(m.hold_time);
        self.u64(m.transitions.len() as u64);
        for t in &m.transitions {
            self.u64(t.def_index as u64);
            self.u64(t.src as u64);
            self.u64(t.trigger as u64);
            self.u64(t.dst as u64);
            self.u32(t.priority);
            self.f64(t.transition_time);
            self.u64(t.firing.len() as u64);
            for &(o, d) in &t.firing {
                self.u64(o as u64);
                self.f64(d);
            }
            self.u64(t.past_constraints.len() as u64);
            for &(i, d) in &t.past_constraints {
                self.u64(i as u64);
                self.f64(d);
            }
        }
    }
}

// ----------------------------------------------------------------------
// JSON shape helpers
// ----------------------------------------------------------------------

fn malformed(ctx: &str, key: &str, want: &str) -> IrError {
    IrError::Malformed(format!("{ctx}: field '{key}' must be {want}"))
}

fn get_f64(v: &JsonValue, key: &str, ctx: &str) -> Result<f64, IrError> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| malformed(ctx, key, "a number"))
}

fn get_usize(v: &JsonValue, key: &str, ctx: &str) -> Result<usize, IrError> {
    v.get(key)
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| malformed(ctx, key, "a non-negative integer"))
}

fn get_u32(v: &JsonValue, key: &str, ctx: &str) -> Result<u32, IrError> {
    let n = get_usize(v, key, ctx)?;
    u32::try_from(n).map_err(|_| malformed(ctx, key, "an integer no larger than 4294967295"))
}

fn get_str<'a>(v: &'a JsonValue, key: &str, ctx: &str) -> Result<&'a str, IrError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| malformed(ctx, key, "a string"))
}

fn get_bool(v: &JsonValue, key: &str, ctx: &str) -> Result<bool, IrError> {
    v.get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| malformed(ctx, key, "a boolean"))
}

fn get_arr<'a>(v: &'a JsonValue, key: &str, ctx: &str) -> Result<&'a [JsonValue], IrError> {
    v.get(key)
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| malformed(ctx, key, "an array"))
}

fn str_list(items: &[JsonValue], ctx: &str) -> Result<Vec<String>, IrError> {
    items
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| IrError::Malformed(format!("{ctx}: expected a string list")))
        })
        .collect()
}

fn f64_list(items: &[JsonValue], ctx: &str) -> Result<Vec<f64>, IrError> {
    items
        .iter()
        .map(|s| {
            s.as_f64()
                .ok_or_else(|| IrError::Malformed(format!("{ctx}: expected a number list")))
        })
        .collect()
}

fn pair_list(items: &[JsonValue], ctx: &str) -> Result<Vec<(usize, f64)>, IrError> {
    items
        .iter()
        .map(|p| {
            let pair = p.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                IrError::Malformed(format!("{ctx}: expected [index, delay] pairs"))
            })?;
            let i = pair[0]
                .as_usize()
                .ok_or_else(|| IrError::Malformed(format!("{ctx}: pair index must be an integer")))?;
            let d = pair[1]
                .as_f64()
                .ok_or_else(|| IrError::Malformed(format!("{ctx}: pair delay must be a number")))?;
            Ok((i, d))
        })
        .collect()
}

fn opt_port_field(
    v: &JsonValue,
    key: &str,
    ctx: &str,
) -> Result<Option<(usize, usize)>, IrError> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(p) => {
            let pair = p
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| malformed(ctx, key, "a [node, port] pair"))?;
            match (pair[0].as_usize(), pair[1].as_usize()) {
                (Some(n), Some(port)) => Ok(Some((n, port))),
                _ => Err(malformed(ctx, key, "a [node, port] pair of integers")),
            }
        }
    }
}

fn parse_machine(v: &JsonValue, index: usize) -> Result<IrMachine, IrError> {
    let ctx = format!("machine {index}");
    let transitions = get_arr(v, "transitions", &ctx)?
        .iter()
        .enumerate()
        .map(|(ti, t)| {
            let tctx = format!("{ctx} transition {ti}");
            Ok(IrTransition {
                def_index: get_usize(t, "def", &tctx)?,
                src: get_usize(t, "src", &tctx)?,
                trigger: get_usize(t, "trigger", &tctx)?,
                dst: get_usize(t, "dst", &tctx)?,
                priority: get_u32(t, "priority", &tctx)?,
                transition_time: get_f64(t, "transition_time", &tctx)?,
                firing: pair_list(get_arr(t, "firing", &tctx)?, &tctx)?,
                past_constraints: pair_list(get_arr(t, "past", &tctx)?, &tctx)?,
            })
        })
        .collect::<Result<_, IrError>>()?;
    Ok(IrMachine {
        name: get_str(v, "name", &ctx)?.to_string(),
        inputs: str_list(get_arr(v, "inputs", &ctx)?, &ctx)?,
        outputs: str_list(get_arr(v, "outputs", &ctx)?, &ctx)?,
        states: str_list(get_arr(v, "states", &ctx)?, &ctx)?,
        firing_delay: get_f64(v, "firing_delay", &ctx)?,
        jjs: get_u32(v, "jjs", &ctx)?,
        setup_time: get_f64(v, "setup_time", &ctx)?,
        hold_time: get_f64(v, "hold_time", &ctx)?,
        transitions,
    })
}

fn parse_node(v: &JsonValue, index: usize) -> Result<IrNode, IrError> {
    let ctx = format!("node {index}");
    match get_str(v, "kind", &ctx)? {
        "source" => Ok(IrNode::Source {
            pulses: f64_list(get_arr(v, "pulses", &ctx)?, &ctx)?,
        }),
        "cell" => {
            let firing_delay = match v.get("firing_delay") {
                None | Some(JsonValue::Null) => None,
                Some(d) => Some(d.as_f64().ok_or_else(|| {
                    malformed(&ctx, "firing_delay", "a number")
                })?),
            };
            let transition_time = match v.get("transition_time") {
                None | Some(JsonValue::Null) => None,
                Some(d) => Some(d.as_f64().ok_or_else(|| {
                    malformed(&ctx, "transition_time", "a number")
                })?),
            };
            let jjs = match v.get("jjs") {
                None | Some(JsonValue::Null) => None,
                Some(d) => Some(
                    d.as_usize()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| {
                            malformed(&ctx, "jjs", "an integer no larger than 4294967295")
                        })?,
                ),
            };
            let exempt = match v.get("exempt") {
                None => false,
                Some(b) => b
                    .as_bool()
                    .ok_or_else(|| malformed(&ctx, "exempt", "a boolean"))?,
            };
            Ok(IrNode::Instance {
                machine: get_usize(v, "machine", &ctx)?,
                overrides: IrOverrides {
                    firing_delay,
                    transition_time,
                    jjs,
                    exempt_from_variability: exempt,
                },
            })
        }
        other => Err(IrError::Malformed(format!(
            "{ctx}: unknown node kind '{other}'"
        ))),
    }
}

fn parse_wire(v: &JsonValue, index: usize) -> Result<IrWire, IrError> {
    let ctx = format!("wire {index}");
    Ok(IrWire {
        name: get_str(v, "name", &ctx)?.to_string(),
        observed: get_bool(v, "observed", &ctx)?,
        driver: opt_port_field(v, "driver", &ctx)?,
        sink: opt_port_field(v, "sink", &ctx)?,
    })
}

fn parse_query(v: &JsonValue, index: usize) -> Result<IrQuery, IrError> {
    let ctx = format!("query {index}");
    match get_str(v, "kind", &ctx)? {
        "no_error_state" => Ok(IrQuery::NoErrorState),
        "outputs_only_at" => {
            let outputs = get_arr(v, "outputs", &ctx)?
                .iter()
                .map(|o| {
                    let pair = o.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                        IrError::Malformed(format!("{ctx}: expected [name, times] pairs"))
                    })?;
                    let name = pair[0].as_str().ok_or_else(|| {
                        IrError::Malformed(format!("{ctx}: output name must be a string"))
                    })?;
                    let times = pair[1].as_arr().ok_or_else(|| {
                        IrError::Malformed(format!("{ctx}: output times must be an array"))
                    })?;
                    Ok((name.to_string(), f64_list(times, &ctx)?))
                })
                .collect::<Result<_, IrError>>()?;
            Ok(IrQuery::OutputsOnlyAt { outputs })
        }
        other => Err(IrError::Malformed(format!(
            "{ctx}: unknown query kind '{other}'"
        ))),
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use crate::machine::EdgeDef;

    /// A three-node JTL chain as an IR — shared by the cache tests.
    pub(crate) fn small_jtl_ir() -> Ir {
        let jtl = Machine::new(
            "JTL",
            &["a"],
            &["q"],
            5.7,
            2,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "q",
                ..Default::default()
            }],
        )
        .unwrap();
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 25.0], "A");
        let q = c.add_machine(&jtl, &[a]).unwrap()[0];
        let r = c.add_machine(&jtl, &[q]).unwrap()[0];
        c.inspect(r, "Q");
        Ir::from_circuit(&c).unwrap().with_name("jtl_chain")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::EdgeDef;
    use crate::sim::Simulation;

    fn jtl() -> Arc<Machine> {
        Machine::new(
            "JTL",
            &["a"],
            &["q"],
            5.7,
            2,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "q",
                ..Default::default()
            }],
        )
        .unwrap()
    }

    fn small_circuit() -> Circuit {
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0, 25.0, 40.0], "A");
        let q = c.add_machine(&jtl(), &[a]).unwrap()[0];
        let r = c
            .add_machine_with(
                &jtl(),
                &[q],
                NodeOverrides {
                    firing_delay: Some(2.0),
                    exempt_from_variability: true,
                    ..Default::default()
                },
            )
            .unwrap()[0];
        c.inspect(r, "Q");
        c
    }

    #[test]
    fn round_trip_preserves_structure_and_events() {
        let c = small_circuit();
        let ir = Ir::from_circuit(&c).unwrap();
        let c2 = ir.to_circuit().unwrap();
        assert_eq!(c.node_count(), c2.node_count());
        assert_eq!(c.wire_count(), c2.wire_count());
        let e1 = Simulation::new(small_circuit()).run().unwrap();
        let e2 = Simulation::new(c2).run().unwrap();
        assert_eq!(e1, e2);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut ir = Ir::from_circuit(&small_circuit()).unwrap().with_name("jtl2");
        ir.queries = vec![
            IrQuery::NoErrorState,
            IrQuery::OutputsOnlyAt {
                outputs: vec![("Q".into(), vec![17.4, 32.4, 47.4])],
            },
        ];
        let text = ir.to_json();
        let back = Ir::from_json(&text).unwrap();
        assert_eq!(ir, back);
        assert_eq!(ir.content_hash(), back.content_hash());
        // Compact rendering parses to the same document too.
        let compact = ir.to_value().to_compact();
        assert_eq!(Ir::from_json(&compact).unwrap(), ir);
    }

    #[test]
    fn hash_ignores_name_and_query_order_but_not_structure() {
        let base = Ir::from_circuit(&small_circuit()).unwrap();
        let named = base.clone().with_name("different");
        assert_eq!(base.content_hash(), named.content_hash());

        let q1 = IrQuery::NoErrorState;
        let q2 = IrQuery::OutputsOnlyAt {
            outputs: vec![("Q".into(), vec![1.0])],
        };
        let mut a = base.clone();
        a.queries = vec![q1.clone(), q2.clone()];
        let mut b = base.clone();
        b.queries = vec![q2, q1];
        assert_eq!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), base.content_hash());

        let mut stretched = base.clone();
        if let IrNode::Source { pulses } = &mut stretched.nodes[0] {
            pulses[0] += 1.0;
        }
        assert_ne!(base.content_hash(), stretched.content_hash());
    }

    #[test]
    fn hash_is_order_independent_for_the_machine_table() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[10.0], "A");
        let b = c.inp_at(&[12.0], "B");
        let jtl_spec = jtl();
        let slow = jtl_spec.clone().with_firing_delay(9.0);
        let q = c.add_machine(&jtl_spec, &[a]).unwrap()[0];
        let r = c.add_machine(&slow, &[b]).unwrap()[0];
        c.inspect(q, "Q");
        c.inspect(r, "R");
        let ir = Ir::from_circuit(&c).unwrap();
        assert_eq!(ir.machines.len(), 2);
        let mut swapped = ir.clone();
        swapped.machines.swap(0, 1);
        for n in &mut swapped.nodes {
            if let IrNode::Instance { machine, .. } = n {
                *machine = 1 - *machine;
            }
        }
        assert_eq!(ir.content_hash(), swapped.content_hash());
        assert_eq!(ir.canonical_bytes(), swapped.canonical_bytes());
    }

    #[test]
    fn minus_zero_normalizes() {
        let mut a = Ir::from_circuit(&small_circuit()).unwrap();
        let mut b = a.clone();
        if let IrNode::Source { pulses } = &mut a.nodes[0] {
            pulses.insert(0, 0.0);
        }
        if let IrNode::Source { pulses } = &mut b.nodes[0] {
            pulses.insert(0, -0.0);
        }
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn holes_are_rejected() {
        use crate::functional::Hole;
        let mut c = Circuit::new();
        let a = c.inp_at(&[1.0], "A");
        let h = Hole::new("H", 1.0, &["a"], &["q"], |ins, _| vec![ins[0]]);
        let _ = c.add_hole(h, &[a]).unwrap();
        assert!(matches!(
            Ir::from_circuit(&c),
            Err(IrError::UnsupportedHole { .. })
        ));
    }

    #[test]
    fn loopbacks_round_trip_and_pending_ones_are_rejected() {
        // A pending (never-closed) loopback must not export.
        let mut c = Circuit::new();
        let lb = c.loopback_wire();
        let q = c.add_machine(&jtl(), &[lb]).unwrap()[0];
        c.inspect(q, "Q");
        // Feed the machine its own output via a splitter-free direct loop:
        // close q -> lb is illegal (q is observed output); build a second
        // stage instead.
        let mut c2 = Circuit::new();
        let a = c2.inp_at(&[5.0], "A");
        let lb2 = c2.loopback_wire();
        // merger-like: just drive a JTL from the input, close loop from its
        // output to a second JTL reading the loopback.
        let s1 = c2.add_machine(&jtl(), &[a]).unwrap()[0];
        let _s2 = c2.add_machine(&jtl(), &[lb2]).unwrap()[0];
        c2.close_loop(s1, lb2).unwrap();
        let ir = Ir::from_circuit(&c2).unwrap();
        let back = ir.to_circuit().unwrap();
        assert_eq!(back.wire_count(), c2.wire_count());
        let e1 = Simulation::new(c2).run().unwrap();
        let e2 = Simulation::new(back).run().unwrap();
        assert_eq!(e1, e2);

        // A pending loopback does not export.
        assert!(matches!(
            Ir::from_circuit(&c),
            Err(IrError::PendingLoopback { .. })
        ));
    }

    #[test]
    fn import_validates_stimulus_and_version() {
        let mut ir = Ir::from_circuit(&small_circuit()).unwrap();
        let good = ir.clone();
        assert!(good.to_circuit().is_ok());

        if let IrNode::Source { pulses } = &mut ir.nodes[0] {
            pulses[0] = f64::NAN;
        }
        assert!(matches!(
            ir.to_circuit(),
            Err(IrError::Wiring(WiringError::InvalidStimulus { .. }))
        ));

        let mut unsorted = good.clone();
        if let IrNode::Source { pulses } = &mut unsorted.nodes[0] {
            pulses.reverse();
        }
        assert!(matches!(
            unsorted.to_circuit(),
            Err(IrError::Wiring(WiringError::InvalidStimulus { .. }))
        ));

        let mut wrong = good;
        wrong.version = 99;
        assert!(matches!(
            wrong.to_circuit(),
            Err(IrError::Version { found: 99 })
        ));
    }

    #[test]
    fn import_rejects_inconsistent_wiring() {
        let good = Ir::from_circuit(&small_circuit()).unwrap();

        let mut dangling = good.clone();
        dangling.wires[1].sink = None; // leaves node 2's input unconnected
        assert!(matches!(
            dangling.to_circuit(),
            Err(IrError::Wiring(WiringError::Unconnected { .. }))
        ));

        let mut fanout = good.clone();
        let s = fanout.wires[1].sink;
        fanout.wires[2].sink = s;
        assert!(fanout.to_circuit().is_err());

        let mut bad_machine = good;
        if let IrNode::Instance { machine, .. } = &mut bad_machine.nodes[1] {
            *machine = 7;
        }
        assert!(matches!(
            bad_machine.to_circuit(),
            Err(IrError::Malformed(_))
        ));
    }

    #[test]
    fn from_value_rejects_dangling_machine_indices() {
        // REVIEW regression: a decoded node referencing a machine past the
        // table must fail at parse time — `canonical_bytes` inlines the
        // referenced machine, so a dangling index would otherwise panic in
        // the cache before `to_circuit` ever validates.
        let text = r#"{"version":1,"name":"","machines":[],
            "nodes":[{"kind":"cell","machine":0}],"wires":[],"queries":[]}"#;
        match Ir::from_json(text) {
            Err(IrError::Malformed(msg)) => {
                assert!(msg.contains("machine 0"), "{msg}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn oversized_u32_fields_are_rejected_not_truncated() {
        let good = Ir::from_circuit(&small_circuit()).unwrap().to_json();
        // 2^32 + 1 would alias version 1 under a truncating `as u32`.
        let bad_version = good.replace("\"version\": 1", "\"version\": 4294967297");
        assert_ne!(good, bad_version);
        assert!(matches!(
            Ir::from_json(&bad_version),
            Err(IrError::Malformed(_))
        ));
        let bad_jjs = good.replace("\"jjs\": 2", "\"jjs\": 4294967298");
        assert_ne!(good, bad_jjs);
        assert!(matches!(Ir::from_json(&bad_jjs), Err(IrError::Malformed(_))));
    }

    #[test]
    fn anon_counter_reseeds_past_imported_names() {
        let ir = Ir::from_circuit(&small_circuit()).unwrap();
        let mut c = ir.to_circuit().unwrap();
        // Adding a machine must not collide with the imported `_N` names.
        let q = c.output_wires()[0];
        let names_before: std::collections::HashSet<String> =
            (0..c.wire_count()).map(|i| c.wire_name(c.wire_at(i)).to_string()).collect();
        let fresh = c.add_machine(&jtl(), &[q]).unwrap()[0];
        assert!(!names_before.contains(c.wire_name(fresh)));
    }

    #[test]
    fn errors_display_nonempty() {
        let cases: Vec<IrError> = vec![
            IrError::Json(json::JsonError {
                pos: 3,
                msg: "x".into(),
            }),
            IrError::Malformed("x".into()),
            IrError::Version { found: 9 },
            IrError::UnsupportedHole { name: "h".into() },
            IrError::PendingLoopback { wire: "w".into() },
            IrError::Definition(DefinitionError::NoPorts {
                machine: "m".into(),
            }),
            IrError::Wiring(WiringError::ForeignWire),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
