//! The PyLSE Machine: a Mealy machine with timed, prioritized transitions,
//! firing outputs, and constraints on the past (paper §3, Fig. 4–6).
//!
//! A [`Machine`] is the static definition `⟨Q, q_init, Σ, Λ, δ, μ, θ⟩`; a
//! [`Config`] is the runtime configuration `κ⟨q, τ_done, Θ⟩`. The semantics
//! of Fig. 6 are implemented by [`Machine::step`] (Transition relation),
//! [`Machine::dispatch`] (Dispatch relation), and [`Machine::trace`] (Trace
//! relation).

use crate::error::{DefinitionError, Time, TimingViolation, ViolationKind};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Index of a state within a [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub usize);

/// Index of an input symbol within a [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InputId(pub usize);

/// Index of an output symbol within a [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OutputId(pub usize);

/// A single edge in a cell definition, mirroring the dictionary entries of
/// the paper's Figure 8.
///
/// `trigger` and `firing` accept comma-separated lists (`"a,b"`), mirroring
/// PyLSE's `'trigger': ['a', 'b']` shorthand: such an entry expands into one
/// transition per trigger. `past_constraints` pairs an input name (or `"*"`
/// for *any* input) with the minimum allowed distance since that input was
/// last seen.
///
/// ```
/// use rlse_core::machine::EdgeDef;
/// let e = EdgeDef {
///     src: "idle",
///     trigger: "clk",
///     dst: "idle",
///     transition_time: 3.0,
///     past_constraints: &[("*", 2.8)],
///     ..EdgeDef::default()
/// };
/// assert_eq!(e.triggers().collect::<Vec<_>>(), ["clk"]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EdgeDef<'a> {
    /// Source state name.
    pub src: &'a str,
    /// Triggering input name(s), comma separated.
    pub trigger: &'a str,
    /// Destination state name.
    pub dst: &'a str,
    /// Explicit priority; lower wins. Defaults to the edge's position in the
    /// declaration list, so earlier edges out of the same state win ties
    /// (paper §4.1).
    pub priority: Option<u32>,
    /// Time `τ_tran` for the transition to complete; receiving any input
    /// before it completes is illegal. Models hold time.
    pub transition_time: f64,
    /// Output name(s) fired by this transition, comma separated; empty fires
    /// nothing. Each fired output appears `firing_delay` later unless
    /// overridden in `firing_delays`.
    pub firing: &'a str,
    /// Per-output firing-delay overrides for this edge.
    pub firing_delays: &'a [(&'a str, f64)],
    /// Past constraints `θ`: it is an error to take this edge if the named
    /// input (or any input, for `"*"`) was seen less than the paired distance
    /// ago. Models setup time.
    pub past_constraints: &'a [(&'a str, f64)],
}

impl Default for EdgeDef<'_> {
    fn default() -> Self {
        EdgeDef {
            src: "",
            trigger: "",
            dst: "",
            priority: None,
            transition_time: 0.0,
            firing: "",
            firing_delays: &[],
            past_constraints: &[],
        }
    }
}

fn split_list(s: &str) -> impl Iterator<Item = &str> {
    s.split(',').map(str::trim).filter(|t| !t.is_empty())
}

impl<'a> EdgeDef<'a> {
    /// Iterate over the individual trigger names of this (possibly
    /// multi-trigger) edge definition.
    pub fn triggers(&self) -> impl Iterator<Item = &'a str> {
        split_list(self.trigger)
    }

    /// Iterate over the individual fired output names.
    pub fn firings(&self) -> impl Iterator<Item = &'a str> {
        split_list(self.firing)
    }
}

/// A fully elaborated transition of a [`Machine`].
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Position in the machine's transition list (used in diagnostics).
    pub id: usize,
    /// Index of the [`EdgeDef`] this transition was expanded from.
    pub def_index: usize,
    /// Source state.
    pub src: StateId,
    /// Triggering input.
    pub trigger: InputId,
    /// Destination state.
    pub dst: StateId,
    /// Priority among simultaneous triggers leaving `src`; lower wins.
    pub priority: u32,
    /// `τ_tran`: time for the transition to complete.
    pub transition_time: Time,
    /// Fired outputs with their firing delays `τ_fire` (already resolved
    /// against the machine default).
    pub firing: Vec<(OutputId, Time)>,
    /// Past constraints: `(input, τ_dist)` pairs, with `"*"` expanded.
    pub past_constraints: Vec<(InputId, Time)>,
}

/// A PyLSE Machine: the static definition of one SCE cell type.
///
/// Construct with [`Machine::new`], which validates the definition per the
/// paper's §4.2 checks (recognized names, `idle` start state, full
/// specification, at least one firing transition).
#[derive(Debug, Clone)]
pub struct Machine {
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    states: Vec<String>,
    start: StateId,
    transitions: Vec<Transition>,
    /// Lookup table: `state.0 * inputs.len() + input.0` → transition index.
    table: Vec<usize>,
    firing_delay: Time,
    jjs: u32,
    setup_time: Time,
    hold_time: Time,
}

/// Fully elaborated machine fields, as decoded from the netlist IR — the
/// input to [`Machine::from_parts`]. Transitions are already expanded (one
/// per trigger, firing delays resolved); `from_parts` re-validates them and
/// rebuilds the lookup table.
pub(crate) struct MachineParts {
    pub name: String,
    pub inputs: Vec<String>,
    pub outputs: Vec<String>,
    pub states: Vec<String>,
    pub transitions: Vec<Transition>,
    pub firing_delay: Time,
    pub jjs: u32,
    pub setup_time: Time,
    pub hold_time: Time,
}

impl Machine {
    /// Build and validate a machine.
    ///
    /// `firing_delay` is the default `τ_fire` for fired outputs; `jjs` is the
    /// Josephson-junction count (an area metric carried along for reporting).
    ///
    /// # Errors
    ///
    /// Returns a [`DefinitionError`] if the definition is ill-formed: unknown
    /// names, missing `idle` state, duplicate or missing `(state, input)`
    /// transitions, no firing transition, or invalid numeric values.
    pub fn new(
        name: &str,
        inputs: &[&str],
        outputs: &[&str],
        firing_delay: f64,
        jjs: u32,
        edges: &[EdgeDef<'_>],
    ) -> Result<Arc<Self>, DefinitionError> {
        let err_name = || name.to_string();
        if inputs.is_empty() || outputs.is_empty() {
            return Err(DefinitionError::NoPorts { machine: err_name() });
        }
        if !(firing_delay.is_finite() && firing_delay >= 0.0) {
            return Err(DefinitionError::BadNumericValue {
                machine: err_name(),
                field: "firing_delay".into(),
                value: firing_delay,
            });
        }

        // Intern ports, checking for duplicates across both lists.
        let mut seen = std::collections::HashSet::new();
        for p in inputs.iter().chain(outputs.iter()) {
            if !seen.insert(*p) {
                return Err(DefinitionError::DuplicateName {
                    machine: err_name(),
                    name: (*p).into(),
                });
            }
        }
        let inputs: Vec<String> = inputs.iter().map(|s| s.to_string()).collect();
        let outputs: Vec<String> = outputs.iter().map(|s| s.to_string()).collect();
        let input_id = |n: &str| inputs.iter().position(|x| x == n).map(InputId);
        let output_id = |n: &str| outputs.iter().position(|x| x == n).map(OutputId);

        // Collect states from edge endpoints, in order of first mention, with
        // `idle` forced to be present.
        let mut states: Vec<String> = Vec::new();
        let state_id = |states: &mut Vec<String>, n: &str| -> StateId {
            if let Some(i) = states.iter().position(|x| x == n) {
                StateId(i)
            } else {
                states.push(n.to_string());
                StateId(states.len() - 1)
            }
        };
        let mut transitions: Vec<Transition> = Vec::new();
        for (def_index, e) in edges.iter().enumerate() {
            let src = state_id(&mut states, e.src);
            let dst = state_id(&mut states, e.dst);
            if !(e.transition_time.is_finite() && e.transition_time >= 0.0) {
                return Err(DefinitionError::BadNumericValue {
                    machine: err_name(),
                    field: format!("transition_time (edge {def_index})"),
                    value: e.transition_time,
                });
            }
            let mut firing = Vec::new();
            for o in e.firings() {
                let oid = output_id(o).ok_or_else(|| DefinitionError::UnknownOutput {
                    machine: err_name(),
                    output: o.into(),
                })?;
                let delay = e
                    .firing_delays
                    .iter()
                    .find(|(n, _)| *n == o)
                    .map(|(_, d)| *d)
                    .unwrap_or(firing_delay);
                if !(delay.is_finite() && delay >= 0.0) {
                    return Err(DefinitionError::BadNumericValue {
                        machine: err_name(),
                        field: format!("firing_delay for '{o}' (edge {def_index})"),
                        value: delay,
                    });
                }
                firing.push((oid, delay));
            }
            let mut past_constraints = Vec::new();
            for (cin, dist) in e.past_constraints {
                if !(dist.is_finite() && *dist >= 0.0) {
                    return Err(DefinitionError::BadNumericValue {
                        machine: err_name(),
                        field: format!("past_constraint '{cin}' (edge {def_index})"),
                        value: *dist,
                    });
                }
                if *cin == "*" {
                    for i in 0..inputs.len() {
                        past_constraints.push((InputId(i), *dist));
                    }
                } else {
                    let iid =
                        input_id(cin).ok_or_else(|| DefinitionError::UnknownConstraintInput {
                            machine: err_name(),
                            input: (*cin).into(),
                        })?;
                    past_constraints.push((iid, *dist));
                }
            }
            let mut any_trigger = false;
            for t in e.triggers() {
                any_trigger = true;
                let trigger = input_id(t).ok_or_else(|| DefinitionError::UnknownTrigger {
                    machine: err_name(),
                    trigger: t.into(),
                })?;
                transitions.push(Transition {
                    id: transitions.len(),
                    def_index,
                    src,
                    trigger,
                    dst,
                    priority: e.priority.unwrap_or(def_index as u32),
                    transition_time: e.transition_time,
                    firing: firing.clone(),
                    past_constraints: past_constraints.clone(),
                });
            }
            if !any_trigger {
                return Err(DefinitionError::UnknownTrigger {
                    machine: err_name(),
                    trigger: e.trigger.into(),
                });
            }
        }

        let start = states
            .iter()
            .position(|s| s == "idle")
            .map(StateId)
            .ok_or_else(|| DefinitionError::MissingIdleState { machine: err_name() })?;

        // Full specification: every (state, input) has exactly one transition.
        let n_in = inputs.len();
        let mut table = vec![usize::MAX; states.len() * n_in];
        for t in &transitions {
            let slot = &mut table[t.src.0 * n_in + t.trigger.0];
            if *slot != usize::MAX {
                return Err(DefinitionError::ConflictingTransitions {
                    machine: err_name(),
                    state: states[t.src.0].clone(),
                    input: inputs[t.trigger.0].clone(),
                });
            }
            *slot = t.id;
        }
        for (si, s) in states.iter().enumerate() {
            for (ii, i) in inputs.iter().enumerate() {
                if table[si * n_in + ii] == usize::MAX {
                    return Err(DefinitionError::IncompleteSpecification {
                        machine: err_name(),
                        state: s.clone(),
                        input: i.clone(),
                    });
                }
            }
        }
        if !transitions.iter().any(|t| !t.firing.is_empty()) {
            return Err(DefinitionError::NoFiringTransition { machine: err_name() });
        }

        Ok(Arc::new(Machine {
            name: name.to_string(),
            inputs,
            outputs,
            states,
            start,
            transitions,
            table,
            firing_delay,
            jjs,
            setup_time: 0.0,
            hold_time: 0.0,
        }))
    }

    /// Rebuild a machine from fully elaborated parts — the netlist-IR import
    /// path (see [`crate::ir`]). Unlike [`Machine::new`], the transitions are
    /// already expanded (one per trigger, firing delays resolved), so this
    /// re-validates them and rebuilds the `(state, input)` lookup table
    /// rather than elaborating [`EdgeDef`]s.
    ///
    /// Transition `id`s are renumbered to list position; `def_index` is kept
    /// as supplied (it only feeds `definition_size` and diagnostics).
    pub(crate) fn from_parts(parts: MachineParts) -> Result<Arc<Self>, DefinitionError> {
        let MachineParts {
            name,
            inputs,
            outputs,
            states,
            mut transitions,
            firing_delay,
            jjs,
            setup_time,
            hold_time,
        } = parts;
        let err_name = || name.clone();
        if inputs.is_empty() || outputs.is_empty() {
            return Err(DefinitionError::NoPorts { machine: err_name() });
        }
        for (field, value) in [
            ("firing_delay", firing_delay),
            ("setup_time", setup_time),
            ("hold_time", hold_time),
        ] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(DefinitionError::BadNumericValue {
                    machine: err_name(),
                    field: field.into(),
                    value,
                });
            }
        }
        let mut seen = std::collections::HashSet::new();
        for p in inputs.iter().chain(outputs.iter()) {
            if !seen.insert(p.as_str()) {
                return Err(DefinitionError::DuplicateName {
                    machine: err_name(),
                    name: p.clone(),
                });
            }
        }
        let start = states
            .iter()
            .position(|s| s == "idle")
            .map(StateId)
            .ok_or_else(|| DefinitionError::MissingIdleState { machine: err_name() })?;
        for (i, t) in transitions.iter_mut().enumerate() {
            t.id = i;
            if t.src.0 >= states.len() || t.dst.0 >= states.len() {
                return Err(DefinitionError::UnknownState {
                    machine: err_name(),
                    state: format!("#{}", t.src.0.max(t.dst.0)),
                });
            }
            if t.trigger.0 >= inputs.len() {
                return Err(DefinitionError::UnknownTrigger {
                    machine: err_name(),
                    trigger: format!("#{}", t.trigger.0),
                });
            }
            if !(t.transition_time.is_finite() && t.transition_time >= 0.0) {
                return Err(DefinitionError::BadNumericValue {
                    machine: err_name(),
                    field: format!("transition_time (transition {i})"),
                    value: t.transition_time,
                });
            }
            for &(o, d) in &t.firing {
                if o.0 >= outputs.len() {
                    return Err(DefinitionError::UnknownOutput {
                        machine: err_name(),
                        output: format!("#{}", o.0),
                    });
                }
                if !(d.is_finite() && d >= 0.0) {
                    return Err(DefinitionError::BadNumericValue {
                        machine: err_name(),
                        field: format!("firing_delay (transition {i})"),
                        value: d,
                    });
                }
            }
            for &(cin, dist) in &t.past_constraints {
                if cin.0 >= inputs.len() {
                    return Err(DefinitionError::UnknownConstraintInput {
                        machine: err_name(),
                        input: format!("#{}", cin.0),
                    });
                }
                if !(dist.is_finite() && dist >= 0.0) {
                    return Err(DefinitionError::BadNumericValue {
                        machine: err_name(),
                        field: format!("past_constraint (transition {i})"),
                        value: dist,
                    });
                }
            }
        }
        let n_in = inputs.len();
        let mut table = vec![usize::MAX; states.len() * n_in];
        for t in &transitions {
            let slot = &mut table[t.src.0 * n_in + t.trigger.0];
            if *slot != usize::MAX {
                return Err(DefinitionError::ConflictingTransitions {
                    machine: err_name(),
                    state: states[t.src.0].clone(),
                    input: inputs[t.trigger.0].clone(),
                });
            }
            *slot = t.id;
        }
        for (si, s) in states.iter().enumerate() {
            for (ii, i) in inputs.iter().enumerate() {
                if table[si * n_in + ii] == usize::MAX {
                    return Err(DefinitionError::IncompleteSpecification {
                        machine: err_name(),
                        state: s.clone(),
                        input: i.clone(),
                    });
                }
            }
        }
        if !transitions.iter().any(|t| !t.firing.is_empty()) {
            return Err(DefinitionError::NoFiringTransition { machine: err_name() });
        }
        Ok(Arc::new(Machine {
            name,
            inputs,
            outputs,
            states,
            start,
            transitions,
            table,
            firing_delay,
            jjs,
            setup_time,
            hold_time,
        }))
    }

    /// Record the nominal setup/hold times used by this cell's constraints
    /// (informational; the actual constraints live on the transitions).
    pub fn with_setup_hold(self: Arc<Self>, setup: Time, hold: Time) -> Arc<Self> {
        let mut m = (*self).clone();
        m.setup_time = setup;
        m.hold_time = hold;
        Arc::new(m)
    }

    /// A copy of this machine with every firing delay replaced by `delay`
    /// (the per-instance `firing_delay=` override of paper §4.1).
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or not finite.
    pub fn with_firing_delay(&self, delay: Time) -> Arc<Self> {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "firing delay must be finite and non-negative"
        );
        let mut m = self.clone();
        m.firing_delay = delay;
        for t in &mut m.transitions {
            for (_, d) in &mut t.firing {
                *d = delay;
            }
        }
        Arc::new(m)
    }

    /// A copy of this machine with every *nonzero* transition time replaced
    /// by `time`. Zero-time transitions (instantaneous bookkeeping moves)
    /// are left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `time` is negative or not finite.
    pub fn with_transition_time(&self, time: Time) -> Arc<Self> {
        assert!(
            time.is_finite() && time >= 0.0,
            "transition time must be finite and non-negative"
        );
        let mut m = self.clone();
        for t in &mut m.transitions {
            if t.transition_time > 0.0 {
                t.transition_time = time;
            }
        }
        Arc::new(m)
    }

    /// The machine's name, e.g. `"AND"`.
    pub fn name(&self) -> &str {
        &self.name
    }
    /// Input symbol names `Σ`.
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }
    /// Output symbol names `Λ`.
    pub fn outputs(&self) -> &[String] {
        &self.outputs
    }
    /// State names `Q`.
    pub fn states(&self) -> &[String] {
        &self.states
    }
    /// The initial state `q_init` (always named `idle`).
    pub fn start(&self) -> StateId {
        self.start
    }
    /// All elaborated transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }
    /// Default firing delay `τ_fire`.
    pub fn firing_delay(&self) -> Time {
        self.firing_delay
    }
    /// Josephson-junction count (area metric).
    pub fn jjs(&self) -> u32 {
        self.jjs
    }

    /// Number of declarative [`EdgeDef`] entries this machine was built from
    /// — the paper's "size" metric for basic cells (multi-trigger entries
    /// count once even though they expand to several transitions).
    pub fn definition_size(&self) -> usize {
        self.transitions
            .iter()
            .map(|t| t.def_index)
            .max()
            .map_or(0, |m| m + 1)
    }
    /// Nominal setup time, if recorded.
    pub fn setup_time(&self) -> Time {
        self.setup_time
    }
    /// Nominal hold time, if recorded.
    pub fn hold_time(&self) -> Time {
        self.hold_time
    }

    /// Look up an input id by name.
    pub fn input_id(&self, name: &str) -> Option<InputId> {
        self.inputs.iter().position(|x| x == name).map(InputId)
    }
    /// Look up an output id by name.
    pub fn output_id(&self, name: &str) -> Option<OutputId> {
        self.outputs.iter().position(|x| x == name).map(OutputId)
    }
    /// Look up a state id by name.
    pub fn state_id(&self, name: &str) -> Option<StateId> {
        self.states.iter().position(|x| x == name).map(StateId)
    }

    /// `δ(q, σ)`: the unique transition out of `q` on `σ`.
    pub fn transition_for(&self, q: StateId, sigma: InputId) -> &Transition {
        &self.transitions[self.table[q.0 * self.inputs.len() + sigma.0]]
    }

    /// The initial configuration `κ_init = ⟨q_init, 0, {σ ↦ -∞}⟩`.
    pub fn initial_config(&self) -> Config {
        Config {
            state: self.start,
            tau_done: 0.0,
            theta: vec![f64::NEG_INFINITY; self.inputs.len()],
        }
    }

    /// The Transition relation (Fig. 6): deliver input `sigma` at `tau_arr`.
    ///
    /// Returns the successor configuration and the absolute-time outputs
    /// fired, or the violation that sends the machine to `q_err`.
    ///
    /// # Errors
    ///
    /// * `Error-κ Tran` if `tau_arr < tau_done` (arrived during a transition).
    /// * `Error-κ Cons` if some constrained input was seen less than
    ///   `τ_dist` ago.
    pub fn step(
        &self,
        cfg: &Config,
        sigma: InputId,
        tau_arr: Time,
    ) -> Result<(Config, Vec<(OutputId, Time)>), TimingViolation> {
        let t = self.transition_for(cfg.state, sigma);
        let violation = |kind| TimingViolation {
            machine: self.name.clone(),
            node_wire: String::new(),
            transition: t.id,
            inputs: vec![self.inputs[sigma.0].clone()],
            tau_arr,
            kind,
        };
        if tau_arr < cfg.tau_done {
            return Err(violation(ViolationKind::TransitionTime {
                tau_done: cfg.tau_done,
            }));
        }
        for &(cin, dist) in &t.past_constraints {
            let last = cfg.theta[cin.0];
            if tau_arr < last + dist {
                return Err(violation(ViolationKind::PastConstraint {
                    constrained: self.inputs[cin.0].clone(),
                    required: dist,
                    last_seen: last,
                }));
            }
        }
        let mut next = cfg.clone();
        next.state = t.dst;
        next.tau_done = tau_arr + t.transition_time;
        next.theta[sigma.0] = tau_arr;
        let outputs = t
            .firing
            .iter()
            .map(|&(o, d)| (o, tau_arr + d))
            .collect();
        Ok((next, outputs))
    }

    /// The Dispatch relation (Fig. 6): deliver a set of simultaneous inputs
    /// at `tau_arr`, handling them in priority order (lowest priority number
    /// first; ties broken by input index, a deterministic refinement of the
    /// paper's nondeterministic choice).
    ///
    /// # Errors
    ///
    /// Propagates the first timing violation encountered. Note that if the
    /// first handled transition has a nonzero transition time, any remaining
    /// simultaneous input is itself a transition-time violation, exactly as
    /// the formal semantics prescribe.
    pub fn dispatch(
        &self,
        cfg: &Config,
        sigmas: &[InputId],
        tau_arr: Time,
    ) -> Result<(Config, Vec<(OutputId, Time)>), TimingViolation> {
        let mut rest: Vec<InputId> = sigmas.to_vec();
        let mut cur = cfg.clone();
        let mut outs = Vec::new();
        while !rest.is_empty() {
            // argmin over priorities of δ(q_curr, σ').
            let (pos, _) = rest
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| {
                    let t = self.transition_for(cur.state, **s);
                    (t.priority, s.0)
                })
                .expect("nonempty");
            let sigma = rest.remove(pos);
            let (next, fired) = self.step(&cur, sigma, tau_arr).map_err(|mut v| {
                v.inputs = sigmas.iter().map(|s| self.inputs[s.0].clone()).collect();
                v
            })?;
            cur = next;
            outs.extend(fired);
        }
        Ok((cur, outs))
    }

    /// The Trace relation (Fig. 6): run a whole schedule of time-tagged input
    /// batches through the machine, returning every output fired.
    ///
    /// `schedule` maps arrival times to the set of inputs arriving then; it
    /// is processed in time order.
    ///
    /// # Errors
    ///
    /// Stops at, and returns, the first timing violation.
    pub fn trace(
        &self,
        schedule: &BTreeMap<TimeKey, Vec<InputId>>,
    ) -> Result<Vec<(OutputId, Time)>, TimingViolation> {
        let mut cfg = self.initial_config();
        let mut outs = Vec::new();
        for (tk, sigmas) in schedule {
            let (next, fired) = self.dispatch(&cfg, sigmas, tk.time())?;
            cfg = next;
            outs.extend(fired);
        }
        outs.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        Ok(outs)
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FSM '{}' ({} states, {} transitions, {} JJs)",
            self.name,
            self.states.len(),
            self.transitions.len(),
            self.jjs
        )
    }
}

/// A totally ordered wrapper over `f64` time for use as a map key.
///
/// Times in RLSE are finite (input schedules reject NaN), so `total_cmp`
/// gives the ordering one expects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeKey(f64);

impl TimeKey {
    /// Wrap a finite time.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN.
    pub fn new(t: f64) -> Self {
        assert!(!t.is_nan(), "time must not be NaN");
        TimeKey(t)
    }
    /// The wrapped time.
    pub fn time(self) -> f64 {
        self.0
    }
}

impl Eq for TimeKey {}
impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A machine configuration `κ⟨q, τ_done, Θ⟩` (paper §3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Current state `q`.
    pub state: StateId,
    /// End of the unstable period: inputs arriving strictly before this are
    /// transition-time violations.
    pub tau_done: Time,
    /// `Θ`: for each input, the last time it was seen (`-∞` if never).
    pub theta: Vec<Time>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Synchronous And Element of the paper's Figure 8.
    pub fn sync_and() -> Arc<Machine> {
        const SETUP: f64 = 2.8;
        const HOLD: f64 = 3.0;
        let pc: &[(&str, f64)] = &[("*", SETUP)];
        Machine::new(
            "AND",
            &["a", "b", "clk"],
            &["q"],
            9.2,
            11,
            &[
                EdgeDef {
                    src: "idle",
                    trigger: "clk",
                    dst: "idle",
                    transition_time: HOLD,
                    past_constraints: pc,
                    ..Default::default()
                },
                EdgeDef { src: "idle", trigger: "a", dst: "a_arr", ..Default::default() },
                EdgeDef { src: "idle", trigger: "b", dst: "b_arr", ..Default::default() },
                EdgeDef { src: "a_arr", trigger: "b", dst: "ab_arr", ..Default::default() },
                EdgeDef { src: "a_arr", trigger: "a", dst: "a_arr", ..Default::default() },
                EdgeDef {
                    src: "a_arr",
                    trigger: "clk",
                    dst: "idle",
                    transition_time: HOLD,
                    past_constraints: pc,
                    ..Default::default()
                },
                EdgeDef { src: "b_arr", trigger: "a", dst: "ab_arr", ..Default::default() },
                EdgeDef { src: "b_arr", trigger: "b", dst: "b_arr", ..Default::default() },
                EdgeDef {
                    src: "b_arr",
                    trigger: "clk",
                    dst: "idle",
                    transition_time: HOLD,
                    past_constraints: pc,
                    ..Default::default()
                },
                EdgeDef {
                    src: "ab_arr",
                    trigger: "clk",
                    dst: "idle",
                    transition_time: HOLD,
                    firing: "q",
                    past_constraints: pc,
                    ..Default::default()
                },
                EdgeDef { src: "ab_arr", trigger: "a,b", dst: "ab_arr", ..Default::default() },
            ],
        )
        .unwrap()
    }

    #[test]
    fn and_shape_matches_table3() {
        let m = sync_and();
        assert_eq!(m.states().len(), 4);
        assert_eq!(m.transitions().len(), 12);
        assert_eq!(m.inputs().len(), 3);
        assert_eq!(m.jjs(), 11);
        assert_eq!(m.states()[m.start().0], "idle");
    }

    #[test]
    fn and_fires_after_both_inputs() {
        let m = sync_and();
        let a = m.input_id("a").unwrap();
        let b = m.input_id("b").unwrap();
        let clk = m.input_id("clk").unwrap();
        let mut cfg = m.initial_config();
        let (c1, o1) = m.step(&cfg, a, 10.0).unwrap();
        assert!(o1.is_empty());
        let (c2, o2) = m.step(&c1, b, 20.0).unwrap();
        assert!(o2.is_empty());
        let (c3, o3) = m.step(&c2, clk, 50.0).unwrap();
        assert_eq!(o3, vec![(OutputId(0), 59.2)]);
        assert_eq!(c3.state, m.start());
        cfg = c3;
        // Next period with only `a`: no output.
        let (c4, _) = m.step(&cfg, a, 70.0).unwrap();
        let (_, o5) = m.step(&c4, clk, 100.0).unwrap();
        assert!(o5.is_empty());
    }

    #[test]
    fn hold_time_violation_is_detected() {
        let m = sync_and();
        let a = m.input_id("a").unwrap();
        let clk = m.input_id("clk").unwrap();
        let cfg = m.initial_config();
        // clk at 50 starts a 3.0 transition; `a` at 51 arrives during it.
        let (c1, _) = m.step(&cfg, clk, 50.0).unwrap();
        let err = m.step(&c1, a, 51.0).unwrap_err();
        match err.kind {
            ViolationKind::TransitionTime { tau_done } => assert_eq!(tau_done, 53.0),
            k => panic!("expected transition-time violation, got {k:?}"),
        }
    }

    #[test]
    fn setup_time_violation_is_detected() {
        let m = sync_and();
        let b = m.input_id("b").unwrap();
        let clk = m.input_id("clk").unwrap();
        let cfg = m.initial_config();
        // b at 99, clk at 100: violates the 2.8 setup distance (Fig. 13).
        let (c1, _) = m.step(&cfg, b, 99.0).unwrap();
        let err = m.step(&c1, clk, 100.0).unwrap_err();
        match err.kind {
            ViolationKind::PastConstraint { constrained, required, last_seen } => {
                assert_eq!(constrained, "b");
                assert_eq!(required, 2.8);
                assert_eq!(last_seen, 99.0);
            }
            k => panic!("expected past-constraint violation, got {k:?}"),
        }
    }

    #[test]
    fn dispatch_prefers_lower_priority_number() {
        let m = sync_and();
        let a = m.input_id("a").unwrap();
        let clk = m.input_id("clk").unwrap();
        // From idle, clk (edge 0) has priority over a (edge 1). Handling clk
        // first starts a 3.0 transition, so the simultaneous `a` errors —
        // matching the formal semantics.
        let cfg = m.initial_config();
        let err = m.dispatch(&cfg, &[a, clk], 50.0).unwrap_err();
        assert!(matches!(err.kind, ViolationKind::TransitionTime { .. }));
        // Whereas from ab_arr, a,b simultaneous self-loops are both zero-time.
        let b = m.input_id("b").unwrap();
        let (c1, _) = m.step(&cfg, a, 10.0).unwrap();
        let (c2, _) = m.step(&c1, b, 11.0).unwrap();
        let (c3, outs) = m.dispatch(&c2, &[a, b], 20.0).unwrap();
        assert!(outs.is_empty());
        assert_eq!(m.states()[c3.state.0], "ab_arr");
    }

    #[test]
    fn trace_runs_a_whole_schedule() {
        let m = sync_and();
        let a = m.input_id("a").unwrap();
        let b = m.input_id("b").unwrap();
        let clk = m.input_id("clk").unwrap();
        let mut sched = BTreeMap::new();
        sched.insert(TimeKey::new(10.0), vec![a]);
        sched.insert(TimeKey::new(20.0), vec![b]);
        sched.insert(TimeKey::new(50.0), vec![clk]);
        sched.insert(TimeKey::new(60.0), vec![a]);
        sched.insert(TimeKey::new(100.0), vec![clk]);
        let outs = m.trace(&sched).unwrap();
        assert_eq!(outs, vec![(OutputId(0), 59.2)]);
    }

    #[test]
    fn incomplete_specification_is_rejected() {
        let err = Machine::new(
            "BAD",
            &["a", "b"],
            &["q"],
            1.0,
            1,
            &[
                EdgeDef { src: "idle", trigger: "a", dst: "idle", firing: "q", ..Default::default() },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, DefinitionError::IncompleteSpecification { .. }));
    }

    #[test]
    fn missing_idle_is_rejected() {
        let err = Machine::new(
            "BAD",
            &["a"],
            &["q"],
            1.0,
            1,
            &[EdgeDef { src: "s0", trigger: "a", dst: "s0", firing: "q", ..Default::default() }],
        )
        .unwrap_err();
        assert!(matches!(err, DefinitionError::MissingIdleState { .. }));
    }

    #[test]
    fn conflicting_transitions_are_rejected() {
        let err = Machine::new(
            "BAD",
            &["a"],
            &["q"],
            1.0,
            1,
            &[
                EdgeDef { src: "idle", trigger: "a", dst: "idle", firing: "q", ..Default::default() },
                EdgeDef { src: "idle", trigger: "a", dst: "idle", ..Default::default() },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, DefinitionError::ConflictingTransitions { .. }));
    }

    #[test]
    fn no_firing_transition_is_rejected() {
        let err = Machine::new(
            "BAD",
            &["a"],
            &["q"],
            1.0,
            1,
            &[EdgeDef { src: "idle", trigger: "a", dst: "idle", ..Default::default() }],
        )
        .unwrap_err();
        assert!(matches!(err, DefinitionError::NoFiringTransition { .. }));
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(matches!(
            Machine::new("B", &["a"], &["q"], 1.0, 1, &[EdgeDef {
                src: "idle", trigger: "zz", dst: "idle", firing: "q", ..Default::default()
            }]),
            Err(DefinitionError::UnknownTrigger { .. })
        ));
        assert!(matches!(
            Machine::new("B", &["a"], &["q"], 1.0, 1, &[EdgeDef {
                src: "idle", trigger: "a", dst: "idle", firing: "zz", ..Default::default()
            }]),
            Err(DefinitionError::UnknownOutput { .. })
        ));
        assert!(matches!(
            Machine::new("B", &["a"], &["q"], 1.0, 1, &[EdgeDef {
                src: "idle", trigger: "a", dst: "idle", firing: "q",
                past_constraints: &[("zz", 1.0)], ..Default::default()
            }]),
            Err(DefinitionError::UnknownConstraintInput { .. })
        ));
    }

    #[test]
    fn negative_values_are_rejected() {
        assert!(matches!(
            Machine::new("B", &["a"], &["q"], -1.0, 1, &[]),
            Err(DefinitionError::BadNumericValue { .. })
        ));
        assert!(matches!(
            Machine::new("B", &["a"], &["q"], 1.0, 1, &[EdgeDef {
                src: "idle", trigger: "a", dst: "idle", firing: "q",
                transition_time: -2.0, ..Default::default()
            }]),
            Err(DefinitionError::BadNumericValue { .. })
        ));
    }

    #[test]
    fn star_constraint_expands_to_all_inputs() {
        let m = sync_and();
        let t = &m.transitions()[0];
        assert_eq!(t.past_constraints.len(), 3);
    }

    #[test]
    fn per_output_firing_delay_overrides() {
        let m = Machine::new(
            "SPLIT",
            &["a"],
            &["l", "r"],
            5.0,
            3,
            &[EdgeDef {
                src: "idle",
                trigger: "a",
                dst: "idle",
                firing: "l,r",
                firing_delays: &[("r", 7.5)],
                ..Default::default()
            }],
        )
        .unwrap();
        let cfg = m.initial_config();
        let (_, outs) = m.step(&cfg, InputId(0), 10.0).unwrap();
        assert_eq!(outs, vec![(OutputId(0), 15.0), (OutputId(1), 17.5)]);
    }

    #[test]
    fn with_firing_delay_rewrites_every_output() {
        let m = sync_and();
        let m2 = m.with_firing_delay(4.0);
        assert_eq!(m2.firing_delay(), 4.0);
        let clk = m2.input_id("clk").unwrap();
        let a = m2.input_id("a").unwrap();
        let b = m2.input_id("b").unwrap();
        let cfg = m2.initial_config();
        let (c1, _) = m2.step(&cfg, a, 10.0).unwrap();
        let (c2, _) = m2.step(&c1, b, 20.0).unwrap();
        let (_, outs) = m2.step(&c2, clk, 50.0).unwrap();
        assert_eq!(outs, vec![(OutputId(0), 54.0)]);
        // The original machine is untouched.
        assert_eq!(m.firing_delay(), 9.2);
    }

    #[test]
    fn with_transition_time_only_touches_nonzero_edges() {
        let m = sync_and().with_transition_time(5.0);
        for t in m.transitions() {
            // Data edges stay instantaneous; clk edges became 5.0.
            assert!(t.transition_time == 0.0 || t.transition_time == 5.0);
        }
        assert!(m
            .transitions()
            .iter()
            .any(|t| t.transition_time == 5.0));
    }

    #[test]
    fn definition_size_counts_multi_trigger_entries_once() {
        let m = sync_and();
        assert_eq!(m.definition_size(), 11);
        assert_eq!(m.transitions().len(), 12);
    }

    #[test]
    fn theta_tracks_last_seen() {
        let m = sync_and();
        let a = m.input_id("a").unwrap();
        let cfg = m.initial_config();
        assert_eq!(cfg.theta[a.0], f64::NEG_INFINITY);
        let (c1, _) = m.step(&cfg, a, 42.0).unwrap();
        assert_eq!(c1.theta[a.0], 42.0);
    }
}
