//! Unified telemetry: counters, spans, and timeline export shared by the
//! pulse simulator, the Monte-Carlo sweep engine, and (via `rlse-ta`) the
//! zone-graph model checker.
//!
//! The paper's evaluation (Tables 2/3, Fig. 16) is all about *measuring* the
//! engines; this module makes that measurement a first-class, always-carried
//! capability instead of a bespoke harness concern:
//!
//! * **Counters and gauges** — monotonic counts (events dispatched, pulses
//!   heap-pushed/popped, κ-transitions taken, trials completed, zones
//!   explored/subsumed, …) and high-water marks (max heap depth, peak zone
//!   store). Engines accumulate into plain local `u64`s on the hot path and
//!   flush once per run under a single lock, so the hot loop never touches a
//!   string, a map, or an atomic.
//! * **Per-cell tallies** — dispatch/transition/fired counts per cell type,
//!   keyed by the compiled circuit's interned `u32` symbols during the run
//!   and resolved to names only at the flush boundary.
//! * **Spans** — lightweight `(name, track, start, duration)` intervals
//!   recorded into per-thread [`SpanRing`] buffers (one bounded ring per
//!   worker, no cross-thread contention) and merged deterministically: the
//!   exported order is a pure function of `(track, seq)`, never of thread
//!   scheduling.
//! * **Latency histograms** — log-linear [`Histogram`]s (HDR-style: 32
//!   linear sub-buckets per power of two, ~3% relative error) recorded
//!   explicitly via [`Telemetry::record_hist`] and implicitly from every
//!   span's duration, rendered as p50/p90/p99/max quantiles. Histograms
//!   are deterministic to *merge* (bucket counts add, `Eq` compares them),
//!   but the recorded values are wall-clock durations, so — like spans —
//!   they are exported only out-of-band ([`Telemetry::histograms`]), never
//!   through the [`TelemetryReport`].
//! * **Exporters** — a [`TelemetryReport`] of the counter state (hand-rolled
//!   JSON in the `BENCH_sim.json` style plus a human [`std::fmt::Display`]
//!   summary), and a Chrome `trace_event` JSON timeline loadable in
//!   `about:tracing` / [Perfetto](https://ui.perfetto.dev) for visualizing
//!   sweep-worker and model-checker utilization.
//!
//! # Determinism contract
//!
//! [`TelemetryReport`] contains **only deterministic data**: additive
//! counters, max-merged gauges, and per-cell tallies, all of which are pure
//! functions of the workload (`BTreeMap`-ordered, `u64`-summed). For the
//! deterministic engines ([`Sweep`](crate::sweep::Sweep) and the `rlse-ta`
//! model checker) the report is therefore **bit-identical at any thread
//! count** — `report().to_json()` compares equal byte for byte. Wall-clock
//! span timings are inherently nondeterministic, so spans are exported only
//! through the Chrome-trace timeline, never through the report.
//!
//! # Cost model
//!
//! A [`Telemetry`] handle is either *enabled* (backed by shared state) or
//! *disabled* (a `None` inner — every method is a no-op and no counter
//! storage is ever allocated). Engines test `is_enabled()` once per run and
//! hoist the result, so the disabled path adds a single predictable branch
//! per run, not per event; the telemetry-off overhead guard
//! (`rlse-bench`'s `telemetry_guard` binary) holds it under 2% on the
//! bitonic-8 steady state.
//!
//! ```
//! use rlse_core::prelude::*;
//! use rlse_core::telemetry::Telemetry;
//! use rlse_core::machine::{EdgeDef, Machine};
//!
//! # fn main() -> Result<(), rlse_core::Error> {
//! let jtl = Machine::new("JTL", &["a"], &["q"], 5.0, 2, &[EdgeDef {
//!     src: "idle", trigger: "a", dst: "idle", firing: "q", ..EdgeDef::default()
//! }])?;
//! let mut c = Circuit::new();
//! let a = c.inp_at(&[10.0, 20.0], "A");
//! let q = c.add_machine(&jtl, &[a])?[0];
//! c.inspect(q, "Q");
//!
//! let tel = Telemetry::new();
//! Simulation::new(c).telemetry(&tel).run()?;
//! let report = tel.report();
//! assert_eq!(report.counter("sim.runs"), 1);
//! assert_eq!(report.counter("sim.dispatches"), 2);
//! let trace = tel.chrome_trace_json(); // open in about:tracing / Perfetto
//! assert!(trace.starts_with("{\"traceEvents\":["));
//! # Ok(())
//! # }
//! ```

use crate::ir::json::escape_json;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-thread span-ring capacity (spans kept per track before the
/// oldest are overwritten).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Cap on spans retained in the shared store across all merged rings and
/// direct records; further spans are counted as dropped.
const MAX_STORED_SPANS: usize = 1 << 16;

/// Per-cell-type tallies, accumulated during a run under interned `u32`
/// symbols and resolved to the cell name only when flushed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CellTally {
    /// Batches dispatched to instances of this cell type.
    pub dispatches: u64,
    /// κ-transitions taken (0 for holes, which have no machine state).
    pub transitions: u64,
    /// Output pulses fired.
    pub fired: u64,
}

impl CellTally {
    /// Fold another tally into this one (all fields additive).
    pub fn merge(&mut self, other: &CellTally) {
        self.dispatches += other.dispatches;
        self.transitions += other.transitions;
        self.fired += other.fired;
    }

    fn is_zero(&self) -> bool {
        self.dispatches == 0 && self.transitions == 0 && self.fired == 0
    }
}

/// One recorded span: a named interval on a track (thread/worker lane),
/// with a sequence number for deterministic ordering and one numeric
/// payload (trial index, BFS level, …).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRec {
    /// Static span name (`"sim.run"`, `"sweep.trial"`, `"mc.expand"`, …).
    pub name: &'static str,
    /// Track (timeline lane): 0 is the driving thread, workers use 1-based
    /// indices.
    pub track: u32,
    /// Per-track sequence number (monotonic within a ring).
    pub seq: u32,
    /// Start time in microseconds since the owning [`Telemetry`]'s epoch.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// One numeric payload (meaning depends on `name`).
    pub arg: u64,
}

/// A bounded per-thread span buffer. Each worker owns one ring, records
/// into it without any synchronization, and hands it back to the
/// [`Telemetry`] handle with [`Telemetry::merge_ring`] when done. When the
/// ring is full the oldest span is overwritten and counted as dropped.
#[derive(Debug)]
pub struct SpanRing {
    epoch: Instant,
    track: u32,
    cap: usize,
    next_seq: u32,
    buf: Vec<SpanRec>,
    /// Oldest live slot when the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl SpanRing {
    fn new(epoch: Instant, track: u32, cap: usize) -> Self {
        SpanRing {
            epoch,
            track,
            cap: cap.max(1),
            next_seq: 0,
            buf: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// The track this ring records onto.
    pub fn track(&self) -> u32 {
        self.track
    }

    /// Record a span that started at `started` and ends now.
    pub fn record(&mut self, name: &'static str, started: Instant, arg: u64) {
        let start_us = started.saturating_duration_since(self.epoch).as_secs_f64() * 1e6;
        let dur_us = started.elapsed().as_secs_f64() * 1e6;
        let rec = SpanRec {
            name,
            track: self.track,
            seq: self.next_seq,
            start_us,
            dur_us,
            arg,
        };
        self.next_seq = self.next_seq.wrapping_add(1);
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Spans currently held (in ring storage order, not seq order).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Sub-bucket precision of [`Histogram`]: 2^5 = 32 linear sub-buckets per
/// power of two, bounding the relative quantile error at ~3%.
pub const HIST_SUB_BITS: u32 = 5;
const HIST_SUB: u64 = 1 << HIST_SUB_BITS;

/// A log-linear (HDR-style) histogram of `u64` samples — typically
/// durations in microseconds.
///
/// Values below 32 get exact unit buckets; above that, each power of two
/// is split into 32 linear sub-buckets, so any quantile is reported with
/// at most ~3% relative error while the whole `u64` range fits in under
/// 2k buckets (allocated lazily up to the largest recorded value).
///
/// Histograms are **deterministically mergeable**: [`merge`](Self::merge)
/// adds bucket counts element-wise, and `Eq` compares the bucket counts,
/// so folding per-worker histograms in any order yields equal results.
/// The recorded *values* are usually wall-clock, which is why histograms
/// live outside the deterministic [`TelemetryReport`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket counts; the last element is always nonzero (the vector
    /// grows only as far as the largest recorded value's bucket).
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn index_of(v: u64) -> usize {
        if v < HIST_SUB {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros();
            let offset = ((v >> (msb - HIST_SUB_BITS)) - HIST_SUB) as usize;
            (msb - HIST_SUB_BITS + 1) as usize * HIST_SUB as usize + offset
        }
    }

    /// Largest value that lands in bucket `i` — the value quantiles report
    /// for samples in that bucket.
    pub fn bucket_bound(i: usize) -> u64 {
        let i = i as u64;
        if i < HIST_SUB {
            i
        } else {
            let (octave, off) = (i / HIST_SUB, i % HIST_SUB);
            ((HIST_SUB + off + 1) << (octave - 1)) - 1
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` samples of value `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let i = Self::index_of(v);
        if self.counts.len() <= i {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.max = self.max.max(v);
    }

    /// Fold `other` into this histogram (bucket counts add element-wise;
    /// merge order never changes the result).
    pub fn merge(&mut self, other: &Histogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (slot, c) in self.counts.iter_mut().zip(&other.counts) {
            *slot += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest value recorded (exact, not bucket-rounded).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at quantile `q` in [0, 1] (bucket upper bound, capped at
    /// the exact max; 0 for an empty histogram).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(upper_bound, count)`, in increasing value
    /// order — the shape a Prometheus-histogram exposition accumulates.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_bound(i), c))
    }

    /// One-line quantile summary: `count=N p50=… p90=… p99=… max=…`.
    pub fn render(&self) -> String {
        format!(
            "count={} p50={} p90={} p99={} max={}",
            self.count,
            self.quantile(0.5),
            self.quantile(0.9),
            self.quantile(0.99),
            self.max
        )
    }
}

/// Shared mutable telemetry state behind the handle's `Arc`.
#[derive(Debug, Default)]
struct State {
    /// Additive counters, keyed by static name.
    counters: BTreeMap<&'static str, u64>,
    /// Max-merged gauges (high-water marks).
    peaks: BTreeMap<&'static str, u64>,
    /// Per-cell-type tallies, keyed by resolved cell name.
    cells: BTreeMap<String, CellTally>,
    /// Merged spans from every ring and direct record.
    spans: Vec<SpanRec>,
    /// Duration histograms: one per span name (fed automatically by
    /// [`Telemetry::record_span`] / [`Telemetry::merge_ring`]) plus any
    /// recorded explicitly via [`Telemetry::record_hist`].
    hists: BTreeMap<&'static str, Histogram>,
    /// Spans lost to ring overwrites or the shared-store cap.
    dropped_spans: u64,
    /// Sequence counter for spans recorded directly (track-0 convenience).
    direct_seq: u32,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

/// The telemetry handle shared by the engines. Cheap to clone (an `Arc`);
/// a disabled handle carries no storage and turns every operation into a
/// no-op.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A fresh, enabled telemetry store. Its epoch (the zero point of every
    /// span timestamp) is the moment of creation.
    pub fn new() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// A disabled handle: every method is a no-op, nothing is allocated.
    /// Attaching it to an engine is equivalent to attaching nothing —
    /// useful for call sites that want an unconditional handle.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle records anything. Engines hoist this check out
    /// of their hot loops.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `v` to the additive counter `name`.
    pub fn add(&self, name: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            *inner.state.lock().expect("telemetry poisoned").counters.entry(name).or_insert(0) +=
                v;
        }
    }

    /// Add a batch of counters under one lock acquisition — the per-run
    /// flush path used by the engines.
    pub fn add_many(&self, pairs: &[(&'static str, u64)]) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().expect("telemetry poisoned");
            for &(name, v) in pairs {
                *st.counters.entry(name).or_insert(0) += v;
            }
        }
    }

    /// Raise the gauge `name` to at least `v` (max-merge: high-water marks
    /// fold deterministically regardless of flush order).
    pub fn peak(&self, name: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().expect("telemetry poisoned");
            let slot = st.peaks.entry(name).or_insert(0);
            *slot = (*slot).max(v);
        }
    }

    /// Fold a per-cell tally into the cell named `cell`.
    pub fn add_cell(&self, cell: &str, tally: &CellTally) {
        if tally.is_zero() {
            return;
        }
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().expect("telemetry poisoned");
            match st.cells.get_mut(cell) {
                Some(t) => t.merge(tally),
                None => {
                    st.cells.insert(cell.to_string(), *tally);
                }
            }
        }
    }

    /// A new span ring for `track` with the default capacity, or `None`
    /// when disabled (workers skip span bookkeeping entirely).
    pub fn ring(&self, track: u32) -> Option<SpanRing> {
        self.ring_with_capacity(track, DEFAULT_RING_CAPACITY)
    }

    /// A new span ring for `track` holding at most `cap` spans.
    pub fn ring_with_capacity(&self, track: u32, cap: usize) -> Option<SpanRing> {
        self.inner.as_ref().map(|i| SpanRing::new(i.epoch, track, cap))
    }

    /// Merge a worker's ring back into the shared store. Spans are appended
    /// in the ring's sequence order; the export sorts globally by
    /// `(track, seq)`, so the merged timeline is independent of merge order.
    pub fn merge_ring(&self, ring: SpanRing) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().expect("telemetry poisoned");
        st.dropped_spans += ring.dropped;
        let SpanRing { buf, head, .. } = ring;
        // Oldest-first: [head..] then [..head].
        for rec in buf[head..].iter().chain(&buf[..head]) {
            // Histograms take every surviving span's duration even past the
            // span-store cap: a capped store shouldn't skew latency stats.
            st.hists
                .entry(rec.name)
                .or_default()
                .record(rec.dur_us as u64);
            if st.spans.len() >= MAX_STORED_SPANS {
                st.dropped_spans += 1;
            } else {
                st.spans.push(*rec);
            }
        }
    }

    /// Record a span directly on the shared store (one lock per call; meant
    /// for coarse driving-thread spans like a whole run, not per-event use).
    pub fn record_span(&self, name: &'static str, track: u32, started: Instant, arg: u64) {
        let Some(inner) = &self.inner else { return };
        let start_us = started.saturating_duration_since(inner.epoch).as_secs_f64() * 1e6;
        let dur_us = started.elapsed().as_secs_f64() * 1e6;
        let mut st = inner.state.lock().expect("telemetry poisoned");
        let seq = st.direct_seq;
        st.direct_seq = st.direct_seq.wrapping_add(1);
        st.hists.entry(name).or_default().record(dur_us as u64);
        if st.spans.len() >= MAX_STORED_SPANS {
            st.dropped_spans += 1;
        } else {
            st.spans.push(SpanRec {
                name,
                track,
                seq,
                start_us,
                dur_us,
                arg,
            });
        }
    }

    /// An `Instant` for timing a span, taken only when enabled so the
    /// disabled path never reads the clock.
    pub fn now(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Record one sample into the histogram `name` (no-op when disabled).
    /// Span recording feeds the span-name histogram automatically; this is
    /// for values that aren't spans (queue depths, payload sizes, …).
    pub fn record_hist(&self, name: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner
                .state
                .lock()
                .expect("telemetry poisoned")
                .hists
                .entry(name)
                .or_default()
                .record(v);
        }
    }

    /// Snapshot every histogram, sorted by name. Like spans (and unlike
    /// [`report`](Self::report)), histogram contents are wall-clock data:
    /// out-of-band only, never part of a deterministic response.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .state
                .lock()
                .expect("telemetry poisoned")
                .hists
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }

    /// Snapshot the single histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.as_ref().and_then(|inner| {
            inner
                .state
                .lock()
                .expect("telemetry poisoned")
                .hists
                .get(name)
                .cloned()
        })
    }

    /// Clear all recorded counters, tallies, and spans, keeping the epoch.
    pub fn reset(&self) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().expect("telemetry poisoned");
            *st = State::default();
        }
    }

    /// Snapshot the deterministic counter state (see the module docs for
    /// the determinism contract). A disabled handle yields an empty report.
    pub fn report(&self) -> TelemetryReport {
        match &self.inner {
            None => TelemetryReport::default(),
            Some(inner) => {
                let st = inner.state.lock().expect("telemetry poisoned");
                TelemetryReport {
                    counters: st.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
                    peaks: st.peaks.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
                    cells: st.cells.iter().map(|(k, v)| (k.clone(), *v)).collect(),
                }
            }
        }
    }

    /// Number of spans dropped (ring overwrites plus the shared-store cap).
    pub fn dropped_spans(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.state.lock().expect("telemetry poisoned").dropped_spans,
        }
    }

    /// Export every recorded span as a Chrome `trace_event` JSON document
    /// (load in `about:tracing` or Perfetto). Spans are sorted by
    /// `(track, seq)`, so the document layout is a pure function of the
    /// recorded span set, independent of thread scheduling and merge order;
    /// only the timestamps themselves vary run to run.
    pub fn chrome_trace_json(&self) -> String {
        match &self.inner {
            None => chrome_trace_for(&[], 0),
            Some(inner) => {
                let st = inner.state.lock().expect("telemetry poisoned");
                let mut spans = st.spans.clone();
                spans.sort_by_key(|s| (s.track, s.seq));
                chrome_trace_for(&spans, st.dropped_spans)
            }
        }
    }
}

/// Render a span set as a Chrome `trace_event` document. Pure function of
/// its inputs — the golden shape test feeds it fixed spans and compares the
/// exact output. Tracks are announced with `thread_name` metadata events
/// (`main` for track 0, `worker-N` otherwise); each span is a complete
/// (`"ph":"X"`) event carrying its payload and sequence number in `args`.
pub fn chrome_trace_for(spans: &[SpanRec], dropped: u64) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 128);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut seen_tracks: Vec<u32> = spans.iter().map(|s| s.track).collect();
    seen_tracks.sort_unstable();
    seen_tracks.dedup();
    for t in &seen_tracks {
        if !first {
            out.push(',');
        }
        first = false;
        let label = if *t == 0 {
            "main".to_string()
        } else {
            format!("worker-{t}")
        };
        out.push_str(&format!(
            "\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{t},\
             \"args\":{{\"name\":\"{label}\"}}}}"
        ));
    }
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n{\"name\":\"");
        escape_json(s.name, &mut out);
        out.push_str(&format!(
            "\",\"cat\":\"rlse\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"arg\":{},\"seq\":{}}}}}",
            s.track, s.start_us, s.dur_us, s.arg, s.seq
        ));
    }
    out.push_str(&format!(
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"tool\":\"rlse-telemetry\",\
         \"droppedSpans\":{dropped}}}}}"
    ));
    out
}

/// A deterministic snapshot of the counter state: additive counters,
/// max-merged gauges, and per-cell tallies, each sorted by name. For the
/// deterministic engines the report — including [`to_json`](Self::to_json)
/// — is bit-identical at any thread count.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TelemetryReport {
    /// Additive counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// High-water-mark gauges, sorted by name.
    pub peaks: Vec<(String, u64)>,
    /// Per-cell-type tallies, sorted by cell name.
    pub cells: Vec<(String, CellTally)>,
}

impl TelemetryReport {
    /// The additive counter `name`, or 0 if never recorded.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// All counters whose name starts with `prefix`, in sorted-name order —
    /// the view one subsystem's counters present (e.g.
    /// `counters_with_prefix("sweep_batch.")` for the batch kernel's
    /// per-block execution counters). Deterministic for equal reports.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&str, u64)> {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(n, v)| (n.as_str(), *v))
            .collect()
    }

    /// The gauge `name`, or 0 if never recorded.
    pub fn gauge(&self, name: &str) -> u64 {
        self.peaks
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// True if nothing was recorded (e.g. the handle was disabled).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.peaks.is_empty() && self.cells.is_empty()
    }

    /// Hand-rolled JSON in the `BENCH_sim.json` house style (the workspace
    /// deliberately has no serde dependency). Byte-identical for equal
    /// reports.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    \"");
            escape_json(k, &mut out);
            out.push_str(&format!("\": {v}"));
        }
        out.push_str("\n  },\n  \"peaks\": {");
        for (i, (k, v)) in self.peaks.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    \"");
            escape_json(k, &mut out);
            out.push_str(&format!("\": {v}"));
        }
        out.push_str("\n  },\n  \"cells\": [");
        for (i, (name, t)) in self.cells.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": \"");
            escape_json(name, &mut out);
            out.push_str(&format!(
                "\", \"dispatches\": {}, \"transitions\": {}, \"fired\": {}}}",
                t.dispatches, t.transitions, t.fired
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

impl fmt::Display for TelemetryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "telemetry: (empty)");
        }
        writeln!(f, "telemetry:")?;
        for (k, v) in &self.counters {
            writeln!(f, "  {k:<28} {v}")?;
        }
        for (k, v) in &self.peaks {
            writeln!(f, "  {k:<28} {v} (peak)")?;
        }
        if !self.cells.is_empty() {
            writeln!(f, "  per cell (dispatches / transitions / fired):")?;
            for (name, t) in &self.cells {
                writeln!(
                    f,
                    "    {name:<16} {:>8} / {:>8} / {:>8}",
                    t.dispatches, t.transitions, t.fired
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_no_op() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.add("x", 5);
        tel.peak("y", 9);
        tel.add_cell("JTL", &CellTally {
            dispatches: 1,
            transitions: 1,
            fired: 1,
        });
        assert!(tel.ring(1).is_none());
        assert!(tel.now().is_none());
        let report = tel.report();
        assert!(report.is_empty());
        assert_eq!(report.counter("x"), 0);
        assert_eq!(tel.dropped_spans(), 0);
    }

    #[test]
    fn counters_add_and_peaks_max() {
        let tel = Telemetry::new();
        tel.add("a", 2);
        tel.add("a", 3);
        tel.peak("p", 7);
        tel.peak("p", 4);
        let r = tel.report();
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.gauge("p"), 7);
        tel.reset();
        assert!(tel.report().is_empty());
    }

    #[test]
    fn counters_with_prefix_selects_one_subsystem() {
        let tel = Telemetry::new();
        tel.add("sweep_batch.blocks", 4);
        tel.add("sweep_batch.dispatches", 100);
        tel.add("sweep.trials", 64);
        tel.add("sim.runs", 64);
        let r = tel.report();
        let batch = r.counters_with_prefix("sweep_batch.");
        assert_eq!(
            batch,
            vec![("sweep_batch.blocks", 4), ("sweep_batch.dispatches", 100)]
        );
        assert!(r.counters_with_prefix("analog.").is_empty());
    }

    #[test]
    fn cell_tallies_merge() {
        let tel = Telemetry::new();
        tel.add_cell("C", &CellTally { dispatches: 1, transitions: 2, fired: 1 });
        tel.add_cell("C", &CellTally { dispatches: 1, transitions: 1, fired: 0 });
        tel.add_cell("Z", &CellTally::default()); // zero tally: not stored
        let r = tel.report();
        assert_eq!(r.cells.len(), 1);
        assert_eq!(r.cells[0].1, CellTally { dispatches: 2, transitions: 3, fired: 1 });
    }

    #[test]
    fn report_json_is_deterministic_for_equal_reports() {
        let build = || {
            let tel = Telemetry::new();
            tel.add("b", 1);
            tel.add("a", 2);
            tel.peak("hw", 3);
            tel.add_cell("JTL", &CellTally { dispatches: 4, transitions: 4, fired: 4 });
            tel.report()
        };
        let (r1, r2) = (build(), build());
        assert_eq!(r1, r2);
        assert_eq!(r1.to_json(), r2.to_json());
        // Sorted by name regardless of insertion order.
        assert_eq!(r1.counters[0].0, "a");
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let tel = Telemetry::new();
        let mut ring = tel.ring_with_capacity(1, 2).unwrap();
        let t0 = Instant::now();
        ring.record("s", t0, 0);
        ring.record("s", t0, 1);
        ring.record("s", t0, 2); // evicts arg=0
        assert_eq!(ring.len(), 2);
        tel.merge_ring(ring);
        assert_eq!(tel.dropped_spans(), 1);
        let json = tel.chrome_trace_json();
        assert!(json.contains("\"droppedSpans\":1"));
        // Oldest-first merge: seq 1 then seq 2 survive.
        let i1 = json.find("\"seq\":1").unwrap();
        let i2 = json.find("\"seq\":2").unwrap();
        assert!(i1 < i2);
    }

    #[test]
    fn chrome_trace_shape() {
        let spans = [
            SpanRec { name: "sim.run", track: 0, seq: 0, start_us: 1.0, dur_us: 2.5, arg: 0 },
            SpanRec { name: "sweep.trial", track: 1, seq: 0, start_us: 2.0, dur_us: 1.0, arg: 7 },
        ];
        let json = chrome_trace_for(&spans, 0);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"main\""));
        assert!(json.contains("\"name\":\"worker-1\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.ends_with("}"));
    }

    #[test]
    fn histogram_buckets_are_exact_below_32_and_3pct_above() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
            assert_eq!(Histogram::bucket_bound(Histogram::index_of(v)), v);
        }
        // Above the linear range the bucket bound over-reports by < 1/32.
        for v in [32u64, 100, 999, 4096, 123_456, u64::MAX / 2] {
            let bound = Histogram::bucket_bound(Histogram::index_of(v));
            assert!(bound >= v, "{v} -> {bound}");
            assert!(bound as f64 <= v as f64 * (1.0 + 1.0 / 32.0), "{v} -> {bound}");
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn histogram_quantiles_and_render() {
        let mut h = Histogram::new();
        h.record_n(10, 90); // p50, p90 land here
        h.record_n(1000, 9); // p99 lands here
        h.record(50_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), 10);
        assert_eq!(h.quantile(0.9), 10);
        let p99 = h.quantile(0.99);
        assert!((1000..=1031).contains(&p99), "{p99}");
        assert_eq!(h.max(), 50_000);
        let line = h.render();
        assert!(line.starts_with("count=100 p50=10 p90=10 p99="), "{line}");
        assert!(line.ends_with("max=50000"), "{line}");
        assert_eq!(Histogram::new().quantile(0.5), 0, "empty histogram");
    }

    #[test]
    fn histogram_merge_is_order_independent_and_eq_compares_buckets() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [3u64, 77, 500, 500, 1_000_000] {
            a.record(v);
        }
        for v in [9u64, 77, 123_456] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 8);
        assert_eq!(ab.max(), 1_000_000);
        // Recording the same multiset directly compares equal too.
        let mut direct = Histogram::new();
        for v in [3u64, 9, 77, 77, 500, 500, 123_456, 1_000_000] {
            direct.record(v);
        }
        assert_eq!(ab, direct);
        // Cumulative bucket counts are monotone (the Prometheus shape).
        let total: u64 = ab.buckets().map(|(_, c)| c).sum();
        assert_eq!(total, ab.count());
    }

    #[test]
    fn spans_feed_duration_histograms() {
        let tel = Telemetry::new();
        let t0 = Instant::now();
        tel.record_span("sim.run", 0, t0, 1);
        let mut ring = tel.ring(1).unwrap();
        ring.record("sweep.worker", t0, 0);
        ring.record("sweep.worker", t0, 1);
        tel.merge_ring(ring);
        tel.record_hist("queue.depth", 17);
        let hists = tel.histograms();
        let names: Vec<&str> = hists.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["queue.depth", "sim.run", "sweep.worker"]);
        assert_eq!(tel.histogram("sim.run").unwrap().count(), 1);
        assert_eq!(tel.histogram("sweep.worker").unwrap().count(), 2);
        assert_eq!(tel.histogram("queue.depth").unwrap().max(), 17);
        assert!(tel.histogram("nope").is_none());
        // Disabled handles never record or allocate.
        let off = Telemetry::disabled();
        off.record_hist("x", 1);
        assert!(off.histograms().is_empty());
        // Reset clears histograms with everything else.
        tel.reset();
        assert!(tel.histograms().is_empty());
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        let tel = Telemetry::new();
        tel.add_cell("we\"ird\\cell\n", &CellTally { dispatches: 1, transitions: 0, fired: 0 });
        let json = tel.report().to_json();
        assert!(json.contains("we\\\"ird\\\\cell\\n"));
    }
}
