//! A small SPICE-class transient engine for superconductor cells: modified
//! nodal analysis with backward-Euler integration and the resistively- and
//! capacitively-shunted Josephson junction (RCSJ) model.
//!
//! Units are chosen so all values are O(1): millivolts, milliamps, ohms,
//! picohenries, picofarads, picoseconds; the flux quantum is
//! `Φ₀ = 2.0678 mV·ps`. The junction obeys
//!
//! ```text
//! I = I_c · sin φ + V / R + C · dV/dt,     dφ/dt = (2π / Φ₀) · V
//! ```
//!
//! and each 2π phase slip is one SFQ pulse.
//!
//! Circuits are partitioned per cell (the granularity designers netlist at):
//! every cell is a small dense MNA system solved with Newton iteration at a
//! fixed sub-picosecond timestep, and cells are coupled through standard
//! SFQ current-pulse injections triggered by output-junction phase slips.
//! This keeps the per-step cost proportional to the total junction count —
//! the defining cost shape of schematic-level simulation — while letting
//! arbitrarily large networks be composed.

/// The magnetic flux quantum in mV·ps.
pub const PHI0: f64 = 2.067833848;

/// Index of a node within one cell's netlist (0 is ground).
pub type Node = usize;

/// One circuit element in a cell netlist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Component {
    /// Linear resistor between two nodes (Ω).
    Resistor {
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Resistance in ohms.
        r: f64,
    },
    /// Inductor between two nodes (pH); its branch current is an unknown.
    Inductor {
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Inductance in picohenries.
        l: f64,
    },
    /// Josephson junction to ground with RCSJ shunt (I_c in mA, R in Ω,
    /// C in pF).
    Jj {
        /// The junction's (non-ground) node.
        a: Node,
        /// Critical current (mA).
        ic: f64,
        /// Shunt resistance (Ω).
        r: f64,
        /// Junction capacitance (pF).
        c: f64,
    },
    /// Constant bias current injected into a node (mA).
    Bias {
        /// Target node.
        node: Node,
        /// Current (mA), positive into the node.
        i: f64,
    },
}

/// A logical decision rule supervising a multi-input cell (see the crate
/// docs: decision cells are macromodelled — transport is fully analog, the
/// storage-loop release decision is rule-driven).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Fire the output once *both* inputs have arrived (C element).
    Coincidence,
    /// Fire on the *first* input of each pair; absorb the second
    /// (inverted C element).
    FirstArrival,
    /// Fire on *every* input pulse (merger).
    Merge,
}

/// A cell netlist: components plus its pulse interface.
#[derive(Debug, Clone)]
pub struct CellNetlist {
    /// Cell type name, e.g. `"JTL"`.
    pub name: String,
    /// Number of nodes, including ground (node 0).
    pub nodes: usize,
    /// The elements.
    pub components: Vec<Component>,
    /// Injection node per input port.
    pub inputs: Vec<Node>,
    /// Monitored output junction (index into `components`) per output port.
    pub outputs: Vec<usize>,
    /// Input-stage junctions (indices into `components`) whose phase slips
    /// count as "input k arrived", in port order; empty for pure transport
    /// cells.
    pub input_jjs: Vec<usize>,
    /// Decision rule plus the junction (component index) it overdrives;
    /// `None` for pure transport cells (JTL, splitter).
    pub decision: Option<(Decision, usize)>,
    /// Delay between the decision condition being met and the overdrive of
    /// the output junction (ps) — the designer's path-balancing knob.
    pub decision_delay: f64,
}

impl CellNetlist {
    /// Number of netlist "lines" (components), the paper's size metric for
    /// schematic models.
    pub fn line_count(&self) -> usize {
        self.components.len()
    }

    /// Number of Josephson junctions.
    pub fn jj_count(&self) -> usize {
        self.components
            .iter()
            .filter(|c| matches!(c, Component::Jj { .. }))
            .count()
    }
}

/// Shape of an injected SFQ stimulus pulse: `i(t) = ipk · exp(-(t-t₀)²/2σ²)`.
#[derive(Debug, Clone, Copy)]
pub struct PulseShape {
    /// Peak current (mA).
    pub ipk: f64,
    /// Width parameter σ (ps).
    pub sigma: f64,
}

impl Default for PulseShape {
    fn default() -> Self {
        PulseShape {
            ipk: 0.45,
            sigma: 1.0,
        }
    }
}

/// Runtime state of one cell instance.
#[derive(Debug)]
struct CellState {
    net: CellNetlist,
    /// Node voltages (index 0 = ground, kept at 0).
    v: Vec<f64>,
    /// Inductor branch currents, one per Inductor component (in order).
    il: Vec<f64>,
    /// JJ phases, one per Jj component (in order).
    phi: Vec<f64>,
    /// Pulse-slip counters per JJ (phase passing odd multiples of π).
    slips: Vec<u64>,
    /// Pending input injections: (center time, input port, counted yet).
    injections: Vec<(f64, usize, bool)>,
    /// Decision bookkeeping: input pulses delivered per port, fires issued,
    /// and output pulses already reported (decision outputs are debounced to
    /// one pulse per fire).
    seen: Vec<u64>,
    fires: u64,
    reported_fires: u64,
    /// Overdrive currents scheduled by the decision rule (center time).
    overdrives: Vec<f64>,
    /// Dense solver workspace.
    n_unknowns: usize,
    inductor_ids: Vec<usize>,
    jj_ids: Vec<usize>,
}

impl CellState {
    fn new(net: CellNetlist) -> Self {
        let inductor_ids: Vec<usize> = net
            .components
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c, Component::Inductor { .. }))
            .map(|(i, _)| i)
            .collect();
        let jj_ids: Vec<usize> = net
            .components
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c, Component::Jj { .. }))
            .map(|(i, _)| i)
            .collect();
        let n_unknowns = (net.nodes - 1) + inductor_ids.len();
        CellState {
            v: vec![0.0; net.nodes],
            il: vec![0.0; inductor_ids.len()],
            phi: vec![0.0; jj_ids.len()],
            slips: vec![0; jj_ids.len()],
            injections: Vec::new(),
            seen: vec![0; net.inputs.len()],
            fires: 0,
            reported_fires: 0,
            overdrives: Vec::new(),
            n_unknowns,
            inductor_ids,
            jj_ids,
            net,
        }
    }

    /// Advance one backward-Euler step of size `dt` ending at time `t`.
    /// Returns the output ports that emitted a pulse during this step.
    fn step(&mut self, t: f64, dt: f64, shape: PulseShape) -> Vec<usize> {
        let n = self.n_unknowns;
        let nn = self.net.nodes - 1; // real (non-ground) nodes
        let mut a = vec![0.0f64; n * n];
        let mut rhs = vec![0.0f64; n];
        let mut v_new: Vec<f64> = self.v.clone();

        // External injections (inputs + decision overdrives) at this step.
        // Each injection also counts as "input arrived" for the decision
        // rule the first time its center passes.
        let mut inj = vec![0.0f64; self.net.nodes];
        for (tc, port, counted) in self.injections.iter_mut() {
            let x = (t - *tc) / shape.sigma;
            if x.abs() < 6.0 {
                inj[self.net.inputs[*port]] += shape.ipk * (-0.5 * x * x).exp();
            }
            if t >= *tc && !*counted {
                *counted = true;
                self.seen[*port] += 1;
            }
        }
        if let Some((_, fire_jj)) = self.net.decision {
            if let Component::Jj { a: node, ic, .. } = self.net.components[fire_jj] {
                for &tc in &self.overdrives {
                    let x = (t - tc) / shape.sigma;
                    if x.abs() < 6.0 {
                        // Push the decision junction well past critical.
                        inj[node] += 1.6 * ic * (-0.5 * x * x).exp();
                    }
                }
            }
        }

        // Newton iteration on the new node voltages.
        for _iter in 0..25 {
            for e in a.iter_mut() {
                *e = 0.0;
            }
            for e in rhs.iter_mut() {
                *e = 0.0;
            }
            let mut l_idx = 0usize;
            let mut j_idx = 0usize;
            let idx = |node: Node| node - 1; // unknown index of a node
            let stamp =
                |a: &mut Vec<f64>, r: usize, c: usize, v: f64| a[r * n + c] += v;
            for comp in &self.net.components {
                match *comp {
                    Component::Resistor { a: na, b: nb, r } => {
                        let g = 1.0 / r;
                        if na != 0 {
                            stamp(&mut a, idx(na), idx(na), g);
                        }
                        if nb != 0 {
                            stamp(&mut a, idx(nb), idx(nb), g);
                        }
                        if na != 0 && nb != 0 {
                            stamp(&mut a, idx(na), idx(nb), -g);
                            stamp(&mut a, idx(nb), idx(na), -g);
                        }
                    }
                    Component::Inductor { a: na, b: nb, l } => {
                        // Branch row: V_a - V_b - (L/dt)(I - I_prev) = 0.
                        let row = nn + l_idx;
                        if na != 0 {
                            stamp(&mut a, row, idx(na), 1.0);
                            stamp(&mut a, idx(na), row, 1.0);
                        }
                        if nb != 0 {
                            stamp(&mut a, row, idx(nb), -1.0);
                            stamp(&mut a, idx(nb), row, -1.0);
                        }
                        stamp(&mut a, row, row, -l / dt);
                        rhs[row] += -(l / dt) * self.il[l_idx];
                        l_idx += 1;
                    }
                    Component::Jj { a: na, ic, r, c } => {
                        let k = std::f64::consts::PI / PHI0; // dφ = k (V+Vold) dt (trapezoid)
                        let vg = v_new[na];
                        let phi_new = self.phi[j_idx] + k * dt * (self.v[na] + vg);
                        let g_sin = ic * phi_new.cos() * k * dt;
                        let i_sin = ic * phi_new.sin();
                        let g = 1.0 / r + c / dt + g_sin;
                        let i_eq = i_sin - g_sin * vg - (c / dt) * self.v[na];
                        let ui = idx(na);
                        stamp(&mut a, ui, ui, g);
                        rhs[ui] -= i_eq;
                        j_idx += 1;
                    }
                    Component::Bias { node, i } => {
                        if node != 0 {
                            rhs[idx(node)] += i;
                        }
                    }
                }
            }
            for (node, &cur) in inj.iter().enumerate() {
                if node != 0 && cur != 0.0 {
                    rhs[idx(node)] += cur;
                }
            }

            // Dense Gaussian elimination with partial pivoting.
            let mut x = rhs.clone();
            let mut m = a.clone();
            for col in 0..n {
                let mut piv = col;
                for r in col + 1..n {
                    if m[r * n + col].abs() > m[piv * n + col].abs() {
                        piv = r;
                    }
                }
                if m[piv * n + col].abs() < 1e-12 {
                    continue; // singular row: leave as-is
                }
                if piv != col {
                    for c2 in 0..n {
                        m.swap(col * n + c2, piv * n + c2);
                    }
                    x.swap(col, piv);
                }
                let d = m[col * n + col];
                for r in col + 1..n {
                    let f = m[r * n + col] / d;
                    if f == 0.0 {
                        continue;
                    }
                    for c2 in col..n {
                        m[r * n + c2] -= f * m[col * n + c2];
                    }
                    x[r] -= f * x[col];
                }
            }
            for col in (0..n).rev() {
                let mut s = x[col];
                for c2 in col + 1..n {
                    s -= m[col * n + c2] * x[c2];
                }
                let d = m[col * n + col];
                x[col] = if d.abs() < 1e-12 { 0.0 } else { s / d };
            }

            // Convergence check on node voltages.
            let mut delta = 0.0f64;
            for node in 1..self.net.nodes {
                let nv = x[node - 1];
                delta = delta.max((nv - v_new[node]).abs());
                v_new[node] = nv;
            }
            if delta < 1e-9 {
                // Commit inductor currents.
                self.il.copy_from_slice(&x[nn..nn + self.inductor_ids.len()]);
                break;
            }
            if _iter == 24 {
                self.il.copy_from_slice(&x[nn..nn + self.inductor_ids.len()]);
            }
        }

        // Commit phases and detect slips.
        let mut fired_ports = Vec::new();
        let k = std::f64::consts::PI / PHI0;
        for (j_idx, &comp_idx) in self.jj_ids.clone().iter().enumerate() {
            if let Component::Jj { a: na, .. } = self.net.components[comp_idx] {
                let dphi = k * dt * (self.v[na] + v_new[na]);
                let old = self.phi[j_idx];
                let new = old + dphi;
                // Count crossings of odd multiples of π (pulse centers).
                let crossings = |p: f64| ((p + std::f64::consts::PI)
                    / (2.0 * std::f64::consts::PI))
                    .floor() as i64;
                let slipped = crossings(new) - crossings(old);
                self.phi[j_idx] = new;
                if slipped > 0 {
                    self.slips[j_idx] += slipped as u64;
                    for (port, &out_comp) in self.net.outputs.iter().enumerate() {
                        if out_comp == comp_idx {
                            if self.net.decision.is_some() {
                                // Debounce: one output pulse per decision
                                // fire, however vigorously the junction spun.
                                while self.reported_fires < self.fires {
                                    self.reported_fires += 1;
                                    fired_ports.push(port);
                                }
                            } else {
                                for _ in 0..slipped {
                                    fired_ports.push(port);
                                }
                            }
                        }
                    }
                }
            }
        }
        self.v = v_new;

        // Decision rule: schedule an overdrive when the condition is met.
        if let Some((rule, _)) = self.net.decision {
            let should_fire = match rule {
                Decision::Coincidence => self.seen.iter().copied().min().unwrap_or(0) > self.fires,
                Decision::FirstArrival => {
                    // Fire on the 1st, 3rd, 5th… input pulse overall.
                    let total: u64 = self.seen.iter().sum();
                    total > 2 * self.fires
                }
                Decision::Merge => self.seen.iter().sum::<u64>() > self.fires,
            };
            if should_fire {
                self.fires += 1;
                self.overdrives.push(t + self.net.decision_delay);
            }
        }

        // Drop spent injections.
        self.injections
            .retain(|&(tc, _, _)| t - tc < 6.0 * shape.sigma);
        self.overdrives.retain(|&tc| t - tc < 6.0 * shape.sigma);
        fired_ports
    }
}

/// A transient simulation over a network of analog cells.
#[derive(Debug)]
pub struct AnalogSim {
    cells: Vec<CellState>,
    /// (cell, output port) → (cell, input port) connections.
    routes: Vec<((usize, usize), (usize, usize))>,
    /// Observed outputs: (cell, output port, label).
    probes: Vec<(usize, usize, String)>,
    /// Sampled node voltages: (cell, node, label).
    voltage_probes: Vec<(usize, usize, String)>,
    /// Sample every k-th timestep for voltage traces.
    pub trace_stride: usize,
    /// External stimuli: (cell, input port, times).
    stimuli: Vec<(usize, usize, Vec<f64>)>,
    /// Timestep (ps).
    pub dt: f64,
    /// Stimulus pulse shape.
    pub shape: PulseShape,
}

/// The recorded pulse times per probe label, plus run statistics.
#[derive(Debug, Clone, Default)]
pub struct AnalogEvents {
    /// Pulse times (ps) per probe label.
    pub pulses: std::collections::BTreeMap<String, Vec<f64>>,
    /// Sampled voltage traces per trace label: `(time ps, voltage mV)`.
    pub traces: std::collections::BTreeMap<String, Vec<(f64, f64)>>,
    /// Total timesteps taken.
    pub steps: usize,
    /// Total Josephson junctions simulated.
    pub jjs: usize,
    /// Total netlist lines (components) simulated.
    pub lines: usize,
}

impl AnalogEvents {
    /// Render a sampled voltage trace as a small ASCII oscillogram:
    /// one row per amplitude band, `width` columns across the full run.
    pub fn render_trace(&self, label: &str, width: usize, height: usize) -> String {
        let Some(tr) = self.traces.get(label) else {
            return format!("(no trace '{label}')\n");
        };
        if tr.is_empty() {
            return format!("(empty trace '{label}')\n");
        }
        let t1 = tr.last().expect("nonempty").0.max(f64::MIN_POSITIVE);
        let vmax = tr
            .iter()
            .map(|(_, v)| v.abs())
            .fold(f64::MIN_POSITIVE, f64::max);
        let width = width.max(10);
        let height = height.max(3) | 1; // odd so there is a zero row
        let mut grid = vec![vec![' '; width]; height];
        for &(t, v) in tr {
            let col = ((t / t1) * (width - 1) as f64).round() as usize;
            let row = (((1.0 - v / vmax) / 2.0) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = '*';
        }
        let mut out = String::new();
        for (r, row) in grid.iter().enumerate() {
            let marker = if r == height / 2 { '-' } else { ' ' };
            out.push(marker);
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{label}: 0..{t1:.0} ps, +/-{vmax:.2} mV\n"));
        out
    }
}

impl AnalogSim {
    /// Create an empty simulation with a 0.1 ps timestep.
    pub fn new() -> Self {
        AnalogSim {
            cells: Vec::new(),
            routes: Vec::new(),
            probes: Vec::new(),
            voltage_probes: Vec::new(),
            trace_stride: 5,
            stimuli: Vec::new(),
            dt: 0.1,
            shape: PulseShape::default(),
        }
    }

    /// Add a cell instance; returns its index.
    pub fn add_cell(&mut self, net: CellNetlist) -> usize {
        self.cells.push(CellState::new(net));
        self.cells.len() - 1
    }

    /// Connect `(from_cell, out_port)` to `(to_cell, in_port)`.
    pub fn connect(&mut self, from: (usize, usize), to: (usize, usize)) {
        self.routes.push((from, to));
    }

    /// Drive `(cell, in_port)` with stimulus pulses at the given times.
    pub fn stimulate(&mut self, cell: usize, port: usize, times: &[f64]) {
        self.stimuli.push((cell, port, times.to_vec()));
    }

    /// Record pulses on `(cell, out_port)` under `label`.
    pub fn probe(&mut self, cell: usize, port: usize, label: &str) {
        self.probes.push((cell, port, label.to_string()));
    }

    /// Sample the voltage of `(cell, node)` every `trace_stride` steps,
    /// recorded under `label` (the raw analog waveform of Fig. 16 d–f).
    pub fn trace_node(&mut self, cell: usize, node: usize, label: &str) {
        self.voltage_probes.push((cell, node, label.to_string()));
    }

    /// Run the transient analysis until `t_end` (ps).
    pub fn run(&mut self, t_end: f64) -> AnalogEvents {
        let mut ev = AnalogEvents {
            jjs: self.cells.iter().map(|c| c.net.jj_count()).sum(),
            lines: self.cells.iter().map(|c| c.net.line_count()).sum(),
            ..Default::default()
        };
        // Schedule external stimuli.
        for (cell, port, times) in self.stimuli.clone() {
            for t in times {
                self.cells[cell].injections.push((t, port, false));
            }
        }
        let steps = (t_end / self.dt).ceil() as usize;
        let mut t = 0.0;
        for step in 0..steps {
            t += self.dt;
            ev.steps += 1;
            if step % self.trace_stride == 0 {
                for (cell, node, label) in &self.voltage_probes {
                    let v = self.cells[*cell].v.get(*node).copied().unwrap_or(0.0);
                    ev.traces.entry(label.clone()).or_default().push((t, v));
                }
            }
            for ci in 0..self.cells.len() {
                let fired = self.cells[ci].step(t, self.dt, self.shape);
                for port in fired {
                    for &((fc, fp), (tc, tp)) in &self.routes {
                        if fc == ci && fp == port {
                            self.cells[tc].injections.push((t + 1.0, tp, false));
                        }
                    }
                    for (pc, pp, label) in &self.probes {
                        if *pc == ci && *pp == port {
                            ev.pulses.entry(label.clone()).or_default().push(t);
                        }
                    }
                }
            }
        }
        ev
    }
}

impl Default for AnalogSim {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::jtl_cell;

    #[test]
    fn voltage_trace_captures_the_pulse() {
        let mut sim = AnalogSim::new();
        let j = sim.add_cell(jtl_cell());
        sim.stimulate(j, 0, &[20.0]);
        sim.probe(j, 0, "OUT");
        sim.trace_node(j, 3, "V_OUT");
        let ev = sim.run(60.0);
        let tr = &ev.traces["V_OUT"];
        assert!(!tr.is_empty());
        // The output junction's voltage peaks around the pulse and is ~0
        // long before it.
        let peak = tr.iter().map(|(_, v)| v.abs()).fold(0.0, f64::max);
        assert!(peak > 0.1, "peak {peak} mV");
        // After the bias turn-on transient settles and before the pulse
        // arrives, the junction is quiescent.
        let quiescent: f64 = tr
            .iter()
            .filter(|(t, _)| *t > 12.0 && *t < 16.0)
            .map(|(_, v)| v.abs())
            .fold(0.0, f64::max);
        assert!(quiescent < 0.05, "quiescent {quiescent} mV");
        assert!(peak > 4.0 * quiescent.max(1e-3));
    }

    #[test]
    fn render_trace_produces_an_oscillogram() {
        let mut sim = AnalogSim::new();
        let j = sim.add_cell(jtl_cell());
        sim.stimulate(j, 0, &[20.0]);
        sim.trace_node(j, 2, "V");
        let ev = sim.run(40.0);
        let plot = ev.render_trace("V", 60, 9);
        assert!(plot.contains('*'));
        assert!(plot.contains("mV"));
        assert_eq!(ev.render_trace("missing", 60, 9), "(no trace 'missing')\n");
    }

    #[test]
    fn slip_counting_is_monotone() {
        let mut sim = AnalogSim::new();
        let j = sim.add_cell(jtl_cell());
        sim.stimulate(j, 0, &[20.0, 50.0, 80.0]);
        sim.probe(j, 0, "OUT");
        let ev = sim.run(120.0);
        let out = &ev.pulses["OUT"];
        assert_eq!(out.len(), 3);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }
}
