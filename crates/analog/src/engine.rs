//! A small SPICE-class transient engine for superconductor cells: modified
//! nodal analysis with backward-Euler integration and the resistively- and
//! capacitively-shunted Josephson junction (RCSJ) model.
//!
//! Units are chosen so all values are O(1): millivolts, milliamps, ohms,
//! picohenries, picofarads, picoseconds; the flux quantum is
//! `Φ₀ = 2.0678 mV·ps`. The junction obeys
//!
//! ```text
//! I = I_c · sin φ + V / R + C · dV/dt,     dφ/dt = (2π / Φ₀) · V
//! ```
//!
//! and each 2π phase slip is one SFQ pulse.
//!
//! Circuits are partitioned per cell (the granularity designers netlist at):
//! every cell is a small dense MNA system solved with Newton iteration at a
//! fixed sub-picosecond timestep, and cells are coupled through standard
//! SFQ current-pulse injections triggered by output-junction phase slips.
//!
//! # Two engines
//!
//! [`AnalogSim::run`] is the *event-gated* engine: quiescent cells are
//! frozen analytically and skipped (per-step cost scales with **active**
//! junctions), the constant part of each cell's MNA stamp and the LU
//! factorization of its operating-point matrix are cached and reused across
//! steps (chord Newton), and cell solves within one timestep fan out over a
//! deterministic worker pool, so results are bit-identical at any thread
//! count. [`AnalogSim::run_reference`] keeps the original
//! solve-everything-every-step algorithm verbatim: it is the golden baseline
//! the gated engine is tested against, and the honest "what schematic
//! simulation costs" datapoint for the Table-2 comparison. See DESIGN.md
//! "Analog engine internals" for the hot-window rules and the determinism
//! argument.

use crate::solver::{CellTemplate, DenseLu, RhsOp};
use rlse_core::telemetry::{CellTally, Telemetry};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// The magnetic flux quantum in mV·ps.
pub const PHI0: f64 = 2.067833848;

/// Index of a node within one cell's netlist (0 is ground).
pub type Node = usize;

/// Injection windows are Gaussians truncated at `|t - t_c| < 6σ`; outside
/// the window the stimulus current is exactly zero.
const WINDOW_SIGMAS: f64 = 6.0;

/// A sleeping cell wakes this many σ before a pending window's center
/// (injection current contributions while awake still use the full 6σ
/// window, matching the reference). Beyond 4.5σ the Gaussian drive is under
/// `4e-5·i_pk` — the same scale as the settle-freeze tolerance — so
/// sleeping through the outer skirt cannot move a pulse time.
const WAKE_SIGMAS: f64 = 4.5;

/// A cell may sleep only when its node voltages sit below this (mV) — 0.1%
/// of an SFQ pulse peak. Freezing a residual of this size perturbs junction
/// phases by only ~1e-3 rad (the residual would have decayed within a few
/// ps anyway), three orders below the O(π) slip margins, so it cannot move
/// a pulse time; the Table-2 golden tests pin this empirically.
const SETTLE_V_TOL: f64 = 1e-3;

/// ... and its per-step voltage motion is below this (mV).
const SETTLE_DV_TOL: f64 = 1e-3;

/// ... and every junction phase moved less than this (rad) in the step.
const SETTLE_DPHI_TOL: f64 = 1e-3;

/// ... and every inductor branch current moved less than this (mA).
const SETTLE_DIL_TOL: f64 = 1e-4;

/// Consecutive quiet steps required before a cell is declared settled.
const SETTLE_STEPS: u32 = 8;

/// Re-factorize a cell's LU when any junction's linearized conductance has
/// drifted more than this (mS) from the factored operating point — under 1%
/// of the junction's MNA diagonal, so chord iterations still contract fast.
/// Between re-factorizations the stale factors converge to the same Newton
/// fixed point (the correction enters both the matrix and `i_eq`), just in
/// a few more iterations.
const REFACTOR_TOL: f64 = 2e-2;

/// Past this many Newton iterations without convergence, re-factorize every
/// iteration (plain Newton) so hard steps keep the reference's convergence
/// behavior.
const CHORD_GIVE_UP: usize = 12;

/// One circuit element in a cell netlist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Component {
    /// Linear resistor between two nodes (Ω).
    Resistor {
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Resistance in ohms.
        r: f64,
    },
    /// Inductor between two nodes (pH); its branch current is an unknown.
    Inductor {
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Inductance in picohenries.
        l: f64,
    },
    /// Josephson junction to ground with RCSJ shunt (I_c in mA, R in Ω,
    /// C in pF).
    Jj {
        /// The junction's (non-ground) node.
        a: Node,
        /// Critical current (mA).
        ic: f64,
        /// Shunt resistance (Ω).
        r: f64,
        /// Junction capacitance (pF).
        c: f64,
    },
    /// Constant bias current injected into a node (mA).
    Bias {
        /// Target node.
        node: Node,
        /// Current (mA), positive into the node.
        i: f64,
    },
}

/// A logical decision rule supervising a multi-input cell (see the crate
/// docs: decision cells are macromodelled — transport is fully analog, the
/// storage-loop release decision is rule-driven).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Fire the output once *both* inputs have arrived (C element).
    Coincidence,
    /// Fire on the *first* input of each pair; absorb the second
    /// (inverted C element).
    FirstArrival,
    /// Fire on *every* input pulse (merger).
    Merge,
}

/// A cell netlist: components plus its pulse interface. Structural equality
/// (`PartialEq`) is the key the engine dedups solver templates by: every
/// cell instance with an identical netlist shares one stamped matrix and
/// one cold-start LU factorization.
#[derive(Debug, Clone, PartialEq)]
pub struct CellNetlist {
    /// Cell type name, e.g. `"JTL"`.
    pub name: String,
    /// Number of nodes, including ground (node 0).
    pub nodes: usize,
    /// The elements.
    pub components: Vec<Component>,
    /// Injection node per input port.
    pub inputs: Vec<Node>,
    /// Monitored output junction (index into `components`) per output port.
    pub outputs: Vec<usize>,
    /// Input-stage junctions (indices into `components`) whose phase slips
    /// count as "input k arrived", in port order; empty for pure transport
    /// cells.
    pub input_jjs: Vec<usize>,
    /// Decision rule plus the junction (component index) it overdrives;
    /// `None` for pure transport cells (JTL, splitter).
    pub decision: Option<(Decision, usize)>,
    /// Delay between the decision condition being met and the overdrive of
    /// the output junction (ps) — the designer's path-balancing knob.
    pub decision_delay: f64,
}

impl CellNetlist {
    /// Number of netlist "lines" (components), the paper's size metric for
    /// schematic models.
    pub fn line_count(&self) -> usize {
        self.components.len()
    }

    /// Number of Josephson junctions.
    pub fn jj_count(&self) -> usize {
        self.components
            .iter()
            .filter(|c| matches!(c, Component::Jj { .. }))
            .count()
    }
}

/// Shape of an injected SFQ stimulus pulse: `i(t) = ipk · exp(-(t-t₀)²/2σ²)`.
#[derive(Debug, Clone, Copy)]
pub struct PulseShape {
    /// Peak current (mA).
    pub ipk: f64,
    /// Width parameter σ (ps).
    pub sigma: f64,
}

impl Default for PulseShape {
    fn default() -> Self {
        PulseShape {
            ipk: 0.45,
            sigma: 1.0,
        }
    }
}

/// Per-cell work counters, accumulated locally during the run (no shared
/// state on the hot path) and folded into the attached [`Telemetry`] handle
/// once at the end of the run, in cell-index order — so the flushed totals
/// are identical at any thread count.
#[derive(Debug, Clone, Copy, Default)]
struct CellStats {
    /// Steps this cell was solved in phase 1 (activity-gated).
    active_steps: u64,
    /// Phase-2 rollback re-solves forced by same-step pulse arrivals.
    resolves: u64,
    /// Newton iterations across all solves.
    newton_iters: u64,
    /// LU re-factorizations performed.
    refactorizations: u64,
    /// Newton iterations that reused a stale LU instead of re-factorizing.
    refactor_avoided: u64,
    /// Output pulses fired.
    fired: u64,
}

/// Runtime state of one gated cell instance: electrical state, gating
/// bookkeeping, the chord-Newton LU cache, and reusable solve scratch (no
/// per-step allocation).
#[derive(Debug)]
struct CellRt {
    /// Index into the deduped template table.
    tmpl: usize,
    /// Node voltages (index 0 = ground, kept at 0).
    v: Vec<f64>,
    /// Inductor branch currents, one per Inductor component (in order).
    il: Vec<f64>,
    /// JJ phases, one per Jj component (in order).
    phi: Vec<f64>,
    /// Pulse-slip counters per JJ.
    slips: Vec<u64>,
    /// Pending input injections: (center time, input port, counted yet).
    injections: Vec<(f64, usize, bool)>,
    /// Decision bookkeeping (see the reference engine).
    seen: Vec<u64>,
    fires: u64,
    reported_fires: u64,
    /// Overdrive currents scheduled by the decision rule (center time).
    overdrives: Vec<f64>,
    // --- activity gating ---
    /// Consecutive quiet steps so far.
    quiet: u32,
    /// Frozen: skip solves until `next_wake`.
    asleep: bool,
    /// Earliest time a pending stimulus window can open (∞ if none).
    next_wake: f64,
    // --- chord-Newton LU cache ---
    /// Private factorization at this cell's operating point; `None` means
    /// the template's shared cold-start factorization is still valid.
    lu: Option<DenseLu>,
    /// `g_sin` values embedded in the active factorization, per junction.
    g_fact: Vec<f64>,
    // --- reusable scratch ---
    v_new: Vec<f64>,
    inj_cur: Vec<f64>,
    x: Vec<f64>,
    il_prev: Vec<f64>,
    jj_gsin: Vec<f64>,
    jj_isin: Vec<f64>,
    // --- rollback journal, captured by each solve ---
    // A same-step pulse arrival (phase 2) must rewind the tentative solve.
    // Rather than copy the whole cell state every step, `solve_cell` records
    // just enough to undo itself: `v_new`/`il_prev` already hold the
    // pre-step electrical state, and the lists below journal the few
    // discrete mutations a solve can make.
    phi_prev: Vec<f64>,
    slips_prev: Vec<u64>,
    seen_prev: Vec<u64>,
    /// Injection indices whose `counted` flag flipped during this solve.
    flipped: Vec<u32>,
    /// `overdrives.len()` before this solve (a solve pushes at most one).
    od_len: usize,
    fires_prev: u64,
    reported_prev: u64,
    quiet_prev: u32,
    // --- per-step coordination ---
    /// Output ports fired this step (final after any phase-2 re-solve).
    fired: Vec<usize>,
    /// Solved in phase 1 this step (a rollback journal exists).
    solved: bool,
    /// Received a same-step pulse; must rewind and re-solve in phase 2.
    dirty: bool,
    /// Injections delivered during phase 2, appended after rollback.
    inbox: Vec<(f64, usize, bool)>,
    stats: CellStats,
}

impl CellRt {
    fn new(tmpl: usize, tm: &CellTemplate) -> Self {
        let n_jj = tm.jjs.len();
        CellRt {
            tmpl,
            v: vec![0.0; tm.nodes],
            il: vec![0.0; tm.n_l],
            phi: vec![0.0; n_jj],
            slips: vec![0; n_jj],
            injections: Vec::new(),
            seen: vec![0; tm.inputs.len()],
            fires: 0,
            reported_fires: 0,
            overdrives: Vec::new(),
            quiet: 0,
            asleep: false,
            next_wake: f64::INFINITY,
            lu: None,
            g_fact: tm.g_zero.clone(),
            v_new: vec![0.0; tm.nodes],
            inj_cur: vec![0.0; tm.nodes],
            x: vec![0.0; tm.n],
            il_prev: vec![0.0; tm.n_l],
            jj_gsin: vec![0.0; n_jj],
            jj_isin: vec![0.0; n_jj],
            phi_prev: vec![0.0; n_jj],
            slips_prev: vec![0; n_jj],
            seen_prev: vec![0; tm.inputs.len()],
            flipped: Vec::new(),
            od_len: 0,
            fires_prev: 0,
            reported_prev: 0,
            quiet_prev: 0,
            fired: Vec::new(),
            solved: false,
            dirty: false,
            inbox: Vec::new(),
            stats: CellStats::default(),
        }
    }

    /// Restore power-on state (fresh voltages/phases, no pending stimuli,
    /// cold-start LU, zeroed counters).
    fn reset(&mut self, tm: &CellTemplate) {
        self.v.iter_mut().for_each(|e| *e = 0.0);
        self.il.iter_mut().for_each(|e| *e = 0.0);
        self.phi.iter_mut().for_each(|e| *e = 0.0);
        self.slips.iter_mut().for_each(|e| *e = 0);
        self.injections.clear();
        self.seen.iter_mut().for_each(|e| *e = 0);
        self.fires = 0;
        self.reported_fires = 0;
        self.overdrives.clear();
        self.quiet = 0;
        self.asleep = false;
        self.next_wake = f64::INFINITY;
        self.lu = None;
        self.g_fact.copy_from_slice(&tm.g_zero);
        self.fired.clear();
        self.solved = false;
        self.dirty = false;
        self.inbox.clear();
        self.stats = CellStats::default();
    }

    /// Rewind the effects of this step's tentative solve (phase-2 re-solve
    /// path), using the journal `solve_cell` recorded instead of a full
    /// state copy: after the end-of-solve swap `v_new` still holds the
    /// pre-step voltages, `il_prev`/`phi_prev`/… hold the rest, and the few
    /// discrete list mutations are undone from the flip/push records (spent
    /// entries GC'd at the start of the solve contribute nothing and are
    /// re-dropped identically on re-solve, so they need no undo). The LU
    /// cache is deliberately *not* rewound: stale factors change iteration
    /// counts, never the converged solution.
    fn rollback(&mut self) {
        std::mem::swap(&mut self.v, &mut self.v_new);
        self.il.copy_from_slice(&self.il_prev);
        self.phi.copy_from_slice(&self.phi_prev);
        self.slips.copy_from_slice(&self.slips_prev);
        self.seen.copy_from_slice(&self.seen_prev);
        for &idx in &self.flipped {
            self.injections[idx as usize].2 = false;
        }
        self.overdrives.truncate(self.od_len);
        self.fires = self.fires_prev;
        self.reported_fires = self.reported_prev;
        self.quiet = self.quiet_prev;
        self.asleep = false;
    }
}

/// Advance one backward-Euler step of cell `rt` ending at time `t`,
/// using the split stamp and the cached LU. Appends fired output ports to
/// `rt.fired` and updates the gating state.
fn solve_cell(rt: &mut CellRt, tm: &CellTemplate, t: f64, dt: f64, shape: PulseShape) {
    let n = tm.n;
    let nn = tm.nn;
    let k = std::f64::consts::PI / PHI0;
    rt.fired.clear();

    // Drop spent injections up front. (The reference drops them at the end
    // of each step, but a spent entry contributes exactly zero current and
    // its `counted` flag was set while its window was open, so front-GC is
    // trajectory-identical — and it keeps the lists append-only during the
    // solve, which is what makes the cheap rollback journal possible.)
    let w = WINDOW_SIGMAS * shape.sigma;
    rt.injections.retain(|&(tc, _, _)| t - tc < w);
    rt.overdrives.retain(|&tc| t - tc < w);

    // Journal for a possible phase-2 rollback of this solve.
    rt.phi_prev.copy_from_slice(&rt.phi);
    rt.slips_prev.copy_from_slice(&rt.slips);
    rt.seen_prev.copy_from_slice(&rt.seen);
    rt.flipped.clear();
    rt.od_len = rt.overdrives.len();
    rt.fires_prev = rt.fires;
    rt.reported_prev = rt.reported_fires;
    rt.quiet_prev = rt.quiet;

    rt.v_new.copy_from_slice(&rt.v);
    rt.il_prev.copy_from_slice(&rt.il);

    // External injections (inputs + decision overdrives) at this step.
    for e in rt.inj_cur.iter_mut() {
        *e = 0.0;
    }
    for idx in 0..rt.injections.len() {
        let (tc, port, counted) = rt.injections[idx];
        let x = (t - tc) / shape.sigma;
        if x.abs() < WINDOW_SIGMAS {
            rt.inj_cur[tm.inputs[port]] += shape.ipk * (-0.5 * x * x).exp();
        }
        if t >= tc && !counted {
            rt.injections[idx].2 = true;
            rt.flipped.push(idx as u32);
            rt.seen[port] += 1;
        }
    }
    if let Some((_, node, ic)) = tm.decision {
        for &tc in &rt.overdrives {
            let x = (t - tc) / shape.sigma;
            if x.abs() < WINDOW_SIGMAS {
                // Push the decision junction well past critical.
                rt.inj_cur[node] += 1.6 * ic * (-0.5 * x * x).exp();
            }
        }
    }

    // Newton iteration on the new node voltages, reusing the cached LU as
    // long as the junction operating points are close to the factored ones
    // (chord Newton: the stale conductance appears in both the matrix and
    // `i_eq`, so the fixed point is the exact nonlinear solution).
    for iter in 0..25 {
        rt.stats.newton_iters += 1;
        let mut refactor = iter >= CHORD_GIVE_UP;
        for (j, jj) in tm.jjs.iter().enumerate() {
            let vg = rt.v_new[jj.node];
            let phi_new = rt.phi[j] + k * dt * (rt.v[jj.node] + vg);
            let g_sin = jj.ic * phi_new.cos() * k * dt;
            rt.jj_gsin[j] = g_sin;
            rt.jj_isin[j] = jj.ic * phi_new.sin();
            if (g_sin - rt.g_fact[j]).abs() > REFACTOR_TOL {
                refactor = true;
            }
        }
        if refactor {
            let lu = rt.lu.get_or_insert_with(|| DenseLu::new(n));
            lu.load(&tm.a0);
            for (j, jj) in tm.jjs.iter().enumerate() {
                lu.add_diag(jj.ui, jj.s_static + rt.jj_gsin[j]);
            }
            lu.factor();
            rt.g_fact.copy_from_slice(&rt.jj_gsin);
            rt.stats.refactorizations += 1;
        } else {
            rt.stats.refactor_avoided += 1;
        }

        // Right-hand side, assembled straight into the solve buffer and
        // replayed in netlist component order so the floating-point
        // accumulation matches the reference stamp loop.
        for e in rt.x.iter_mut() {
            *e = 0.0;
        }
        for op in &tm.rhs_prog {
            match *op {
                RhsOp::L {
                    row,
                    l_over_dt,
                    il_idx,
                } => rt.x[row] += -l_over_dt * rt.il[il_idx],
                RhsOp::Jj { j } => {
                    let jj = &tm.jjs[j];
                    let vg = rt.v_new[jj.node];
                    let i_eq = rt.jj_isin[j] - rt.g_fact[j] * vg - jj.c_over_dt * rt.v[jj.node];
                    rt.x[jj.ui] -= i_eq;
                }
                RhsOp::Bias { ui, i } => rt.x[ui] += i,
            }
        }
        for (node, &cur) in rt.inj_cur.iter().enumerate() {
            if node != 0 && cur != 0.0 {
                rt.x[node - 1] += cur;
            }
        }

        match &rt.lu {
            Some(lu) => lu.solve(&mut rt.x),
            None => tm.lu_zero.solve(&mut rt.x),
        }

        // Convergence check on node voltages.
        let mut delta = 0.0f64;
        for node in 1..tm.nodes {
            let nv = rt.x[node - 1];
            delta = delta.max((nv - rt.v_new[node]).abs());
            rt.v_new[node] = nv;
        }
        if delta < 1e-9 {
            rt.il.copy_from_slice(&rt.x[nn..nn + tm.n_l]);
            break;
        }
        if iter == 24 {
            rt.il.copy_from_slice(&rt.x[nn..nn + tm.n_l]);
        }
    }

    // Commit phases and detect slips.
    let mut dphi_max = 0.0f64;
    for (j, jj) in tm.jjs.iter().enumerate() {
        let dphi = k * dt * (rt.v[jj.node] + rt.v_new[jj.node]);
        dphi_max = dphi_max.max(dphi.abs());
        let old = rt.phi[j];
        let new = old + dphi;
        // Count crossings of odd multiples of π (pulse centers).
        let crossings =
            |p: f64| ((p + std::f64::consts::PI) / (2.0 * std::f64::consts::PI)).floor() as i64;
        let slipped = crossings(new) - crossings(old);
        rt.phi[j] = new;
        if slipped > 0 {
            rt.slips[j] += slipped as u64;
            for &port in &tm.ports_of_jj[j] {
                if tm.decision.is_some() {
                    // Debounce: one output pulse per decision fire, however
                    // vigorously the junction spun.
                    while rt.reported_fires < rt.fires {
                        rt.reported_fires += 1;
                        rt.fired.push(port);
                    }
                } else {
                    for _ in 0..slipped {
                        rt.fired.push(port);
                    }
                }
            }
        }
    }
    std::mem::swap(&mut rt.v, &mut rt.v_new); // v_new now holds the old v

    // Decision rule: schedule an overdrive when the condition is met.
    if let Some((rule, _, _)) = tm.decision {
        let should_fire = match rule {
            Decision::Coincidence => rt.seen.iter().copied().min().unwrap_or(0) > rt.fires,
            Decision::FirstArrival => {
                // Fire on the 1st, 3rd, 5th… input pulse overall.
                let total: u64 = rt.seen.iter().sum();
                total > 2 * rt.fires
            }
            Decision::Merge => rt.seen.iter().sum::<u64>() > rt.fires,
        };
        if should_fire {
            rt.fires += 1;
            rt.overdrives.push(t + tm.decision_delay);
        }
    }

    // Gating: count quiet steps; once settled with no stimulus window open,
    // freeze until the earliest upcoming window.
    let mut v_max = 0.0f64;
    let mut dv_max = 0.0f64;
    for node in 1..tm.nodes {
        v_max = v_max.max(rt.v[node].abs());
        dv_max = dv_max.max((rt.v[node] - rt.v_new[node]).abs());
    }
    let mut dil_max = 0.0f64;
    for (i, &cur) in rt.il.iter().enumerate() {
        dil_max = dil_max.max((cur - rt.il_prev[i]).abs());
    }
    let step_quiet = v_max < SETTLE_V_TOL
        && dv_max < SETTLE_DV_TOL
        && dphi_max < SETTLE_DPHI_TOL
        && dil_max < SETTLE_DIL_TOL
        && rt.fired.is_empty();
    rt.quiet = if step_quiet { rt.quiet + 1 } else { 0 };
    if rt.quiet >= SETTLE_STEPS {
        let ww = WAKE_SIGMAS * shape.sigma;
        let mut wake = f64::INFINITY;
        let mut open = false;
        for &(tc, _, _) in &rt.injections {
            if tc - ww <= t {
                open = true;
            } else {
                wake = wake.min(tc - ww);
            }
        }
        for &tc in &rt.overdrives {
            if tc - ww <= t {
                open = true;
            } else {
                wake = wake.min(tc - ww);
            }
        }
        if !open {
            rt.asleep = true;
            rt.next_wake = wake;
        }
    }
}

/// Phase-1 treatment of one cell: a tentative, independent solve. Sleeping
/// cells are skipped with their state analytically frozen.
fn phase1_cell(rt: &mut CellRt, templates: &[CellTemplate], t: f64, dt: f64, shape: PulseShape) {
    rt.dirty = false;
    if rt.asleep && t < rt.next_wake {
        rt.solved = false;
        rt.fired.clear();
        return;
    }
    rt.asleep = false;
    solve_cell(rt, &templates[rt.tmpl], t, dt, shape);
    rt.solved = true;
    rt.stats.active_steps += 1;
}

/// Phase 1 of a step over a whole slice (the serial path).
fn phase1(cells: &mut [CellRt], templates: &[CellTemplate], t: f64, dt: f64, shape: PulseShape) {
    for rt in cells {
        phase1_cell(rt, templates, t, dt, shape);
    }
}

/// Phase 1 over the strided index set `offset, offset+stride, …` (the
/// worker-pool path). Activity travels as a wavefront through consecutive
/// cell indices, so round-robin assignment balances the active cells across
/// workers far better than contiguous chunks.
///
/// # Safety
/// Caller must guarantee that no other thread touches the cells of this
/// index set for the duration of the call (the disjoint stride classes and
/// the step barriers provide this).
unsafe fn phase1_strided(
    shared: CellsPtr,
    offset: usize,
    stride: usize,
    templates: &[CellTemplate],
    t: f64,
    dt: f64,
    shape: PulseShape,
) {
    let mut i = offset;
    while i < shared.len {
        let rt = unsafe { &mut *shared.ptr.add(i) };
        phase1_cell(rt, templates, t, dt, shape);
        i += stride;
    }
}

/// Precomputed per-(cell, port) adjacency: route and probe fan-out, built
/// once per run so firing a pulse is O(fan-out) instead of O(routes).
#[derive(Debug, Default)]
struct NetTables {
    /// `route[cell][port]` → destination `(cell, input port)` list.
    route: Vec<Vec<Vec<(usize, usize)>>>,
    /// `probe[cell][port]` → dense pulse-label indices.
    probe: Vec<Vec<Vec<usize>>>,
}

/// Mutable pulse-recording state threaded through phase 2.
#[derive(Debug, Default)]
struct PulseRec {
    /// Recorded pulse times per dense probe-label index.
    pulse_buf: Vec<Vec<f64>>,
    /// Scratch copy of a cell's fired ports (so routing can mutate peers).
    fired_scratch: Vec<usize>,
    routed: u64,
    recorded: u64,
}

/// Phase 2 of a step (serial, cell-index order): deliver fired pulses.
/// A pulse from cell *i* to cell *j > i* must be visible in *j*'s solve of
/// this same step (the reference engine steps cells in index order and
/// pushes injections mid-loop) — such targets are rewound via their
/// rollback journal and re-solved with the injection present. Targets with
/// *j ≤ i* see the pulse next step, exactly like the reference.
fn phase2(
    cells: &mut [CellRt],
    templates: &[CellTemplate],
    tables: &NetTables,
    rec: &mut PulseRec,
    t: f64,
    dt: f64,
    shape: PulseShape,
) {
    let ww = WAKE_SIGMAS * shape.sigma;
    for ci in 0..cells.len() {
        if cells[ci].dirty {
            let rt = &mut cells[ci];
            if rt.solved {
                rt.rollback();
            } else {
                // Was asleep: state is still the step-start state.
                rt.asleep = false;
            }
            rt.injections.append(&mut rt.inbox);
            solve_cell(rt, &templates[rt.tmpl], t, dt, shape);
            if rt.solved {
                rt.stats.resolves += 1;
            } else {
                rt.stats.active_steps += 1;
            }
            rt.dirty = false;
            rt.solved = true;
        }
        if cells[ci].fired.is_empty() {
            continue;
        }
        cells[ci].stats.fired += cells[ci].fired.len() as u64;
        rec.fired_scratch.clear();
        rec.fired_scratch.extend_from_slice(&cells[ci].fired);
        for fi in 0..rec.fired_scratch.len() {
            let port = rec.fired_scratch[fi];
            for &(tcell, tport) in &tables.route[ci][port] {
                rec.routed += 1;
                let inj = (t + 1.0, tport, false);
                if tcell > ci {
                    cells[tcell].inbox.push(inj);
                    cells[tcell].dirty = true;
                } else {
                    let tgt = &mut cells[tcell];
                    tgt.injections.push(inj);
                    if tgt.asleep {
                        tgt.next_wake = tgt.next_wake.min(inj.0 - ww);
                    }
                }
            }
            for &lbl in &tables.probe[ci][port] {
                rec.recorded += 1;
                rec.pulse_buf[lbl].push(t);
            }
        }
    }
}

/// Per-run compiled state: deduped solver templates, per-cell runtime, and
/// the adjacency tables. Rebuilt lazily when the topology or timestep
/// changes; reused (after [`AnalogSim::reset`]) across repeated runs.
#[derive(Debug)]
struct Runtime {
    dt: f64,
    templates: Vec<CellTemplate>,
    cells: Vec<CellRt>,
    tables: NetTables,
    /// Unique pulse-probe labels, indexed by the dense ids in `tables`.
    probe_labels: Vec<String>,
    /// Voltage probes resolved to `(cell, node, dense trace-label index)`.
    traces: Vec<(usize, usize, usize)>,
    /// Unique trace labels.
    trace_labels: Vec<String>,
}

/// Raw shared view of the cell array for the worker pool. Safety rests on
/// temporal exclusivity: between the step barriers each worker touches only
/// its own disjoint index range, and the main thread touches cells only
/// while the workers are parked at a barrier.
#[derive(Clone, Copy, Debug)]
struct CellsPtr {
    ptr: *mut CellRt,
    len: usize,
}

unsafe impl Sync for CellsPtr {}
unsafe impl Send for CellsPtr {}

/// A sense-reversing spin barrier: the per-step rendezvous cost is a few
/// atomic operations instead of a mutex + condvar round trip, which matters
/// at ~2 barriers per 0.1 ps step.
#[derive(Debug)]
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }

    /// Block until all `n` participants arrive. `local` is this
    /// participant's private phase flag (start at `false`).
    fn wait(&self, local: &mut bool) {
        let target = !*local;
        *local = target;
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(target, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != target {
                spins += 1;
                if spins < 1 << 14 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// A transient simulation over a network of analog cells.
#[derive(Debug)]
pub struct AnalogSim {
    cells: Vec<CellNetlist>,
    /// (cell, output port) → (cell, input port) connections.
    routes: Vec<((usize, usize), (usize, usize))>,
    /// Observed outputs: (cell, output port, label).
    probes: Vec<(usize, usize, String)>,
    /// Sampled node voltages: (cell, node, label).
    voltage_probes: Vec<(usize, usize, String)>,
    /// Sample every k-th timestep for voltage traces (clamped to ≥ 1).
    pub trace_stride: usize,
    /// External stimuli: (cell, input port, times).
    stimuli: Vec<(usize, usize, Vec<f64>)>,
    /// Timestep (ps).
    pub dt: f64,
    /// Stimulus pulse shape.
    pub shape: PulseShape,
    /// Requested worker count (0 = auto).
    threads_req: usize,
    tel: Telemetry,
    rt: Option<Runtime>,
    /// Prebuilt solver templates to reuse instead of rebuilding (see
    /// [`AnalogSim::preload_templates`]).
    preloaded: Option<TemplateBank>,
}

/// An opaque bank of prebuilt solver templates, exported from one
/// [`AnalogSim`] and preloaded into another to skip the per-cell-type
/// template build (matrix stamping + cold-start LU factorization). Banks
/// are matched structurally — a preloaded template is used for a cell when
/// its netlist compares equal and the timesteps agree — so a bank is safe
/// to share across any simulations of the same cell library, e.g. through a
/// `CompiledCache` sidecar keyed on the circuit's IR content hash.
#[derive(Debug, Clone)]
pub struct TemplateBank {
    dt: f64,
    templates: Vec<CellTemplate>,
}

impl TemplateBank {
    /// Number of distinct cell templates held.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// True if the bank holds no templates.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// The timestep (ps) the templates were factorized at. A bank only
    /// applies to simulations using the same timestep.
    pub fn dt(&self) -> f64 {
        self.dt
    }
}

/// The recorded pulse times per probe label, plus run statistics.
/// Implements `PartialEq` so golden tests can assert bit-identical results
/// across thread counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalogEvents {
    /// Pulse times (ps) per probe label.
    pub pulses: std::collections::BTreeMap<String, Vec<f64>>,
    /// Sampled voltage traces per trace label: `(time ps, voltage mV)`.
    pub traces: std::collections::BTreeMap<String, Vec<(f64, f64)>>,
    /// Total timesteps taken.
    pub steps: usize,
    /// Total Josephson junctions simulated.
    pub jjs: usize,
    /// Total netlist lines (components) simulated.
    pub lines: usize,
}

impl AnalogEvents {
    /// Render a sampled voltage trace as a small ASCII oscillogram:
    /// one row per amplitude band, `width` columns across the full run.
    pub fn render_trace(&self, label: &str, width: usize, height: usize) -> String {
        let Some(tr) = self.traces.get(label) else {
            return format!("(no trace '{label}')\n");
        };
        if tr.is_empty() {
            return format!("(empty trace '{label}')\n");
        }
        let t1 = tr.last().expect("nonempty").0.max(f64::MIN_POSITIVE);
        let vmax = tr
            .iter()
            .map(|(_, v)| v.abs())
            .fold(f64::MIN_POSITIVE, f64::max);
        let width = width.max(10);
        let height = height.max(3) | 1; // odd so there is a zero row
        let mut grid = vec![vec![' '; width]; height];
        for &(t, v) in tr {
            let col = ((t / t1) * (width - 1) as f64).round() as usize;
            let row = (((1.0 - v / vmax) / 2.0) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = '*';
        }
        let mut out = String::new();
        for (r, row) in grid.iter().enumerate() {
            let marker = if r == height / 2 { '-' } else { ' ' };
            out.push(marker);
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{label}: 0..{t1:.0} ps, +/-{vmax:.2} mV\n"));
        out
    }
}

impl AnalogSim {
    /// Create an empty simulation with a 0.1 ps timestep.
    pub fn new() -> Self {
        AnalogSim {
            cells: Vec::new(),
            routes: Vec::new(),
            probes: Vec::new(),
            voltage_probes: Vec::new(),
            trace_stride: 5,
            stimuli: Vec::new(),
            dt: 0.1,
            shape: PulseShape::default(),
            threads_req: 0,
            tel: Telemetry::disabled(),
            rt: None,
            preloaded: None,
        }
    }

    /// Add a cell instance; returns its index.
    pub fn add_cell(&mut self, net: CellNetlist) -> usize {
        self.rt = None;
        self.cells.push(net);
        self.cells.len() - 1
    }

    /// Connect `(from_cell, out_port)` to `(to_cell, in_port)`.
    pub fn connect(&mut self, from: (usize, usize), to: (usize, usize)) {
        self.rt = None;
        self.routes.push((from, to));
    }

    /// Drive `(cell, in_port)` with stimulus pulses at the given times.
    pub fn stimulate(&mut self, cell: usize, port: usize, times: &[f64]) {
        self.stimuli.push((cell, port, times.to_vec()));
    }

    /// Record pulses on `(cell, out_port)` under `label`.
    pub fn probe(&mut self, cell: usize, port: usize, label: &str) {
        self.rt = None;
        self.probes.push((cell, port, label.to_string()));
    }

    /// Sample the voltage of `(cell, node)` every `trace_stride` steps,
    /// recorded under `label` (the raw analog waveform of Fig. 16 d–f).
    pub fn trace_node(&mut self, cell: usize, node: usize, label: &str) {
        self.rt = None;
        self.voltage_probes.push((cell, node, label.to_string()));
    }

    /// Set the worker count for parallel cell solves: `0` picks a size from
    /// the host parallelism and the circuit size, `1` forces the serial
    /// path. Results are bit-identical at any setting.
    pub fn set_threads(&mut self, n: usize) {
        self.threads_req = n;
    }

    /// Builder form of [`set_threads`](Self::set_threads).
    pub fn threads(mut self, n: usize) -> Self {
        self.set_threads(n);
        self
    }

    /// Attach a telemetry handle; counters are flushed once per run.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone();
    }

    /// Builder form of [`set_telemetry`](Self::set_telemetry).
    pub fn telemetry(mut self, tel: &Telemetry) -> Self {
        self.set_telemetry(tel);
        self
    }

    /// Restore every cell to its power-on state (zero voltages, phases and
    /// currents, no pending stimuli, cold-start solver caches).
    /// [`run`](Self::run) calls this automatically, so a simulation can be
    /// run repeatedly with identical results.
    pub fn reset(&mut self) {
        if let Some(rt) = &mut self.rt {
            for cell in &mut rt.cells {
                cell.reset(&rt.templates[cell.tmpl]);
            }
        }
    }

    /// Build (or reuse) the compiled runtime: dedup templates by structural
    /// netlist equality, resolve routes/probes to adjacency tables, and
    /// resolve probe labels to dense indices.
    fn ensure_runtime(&mut self) {
        if let Some(rt) = &self.rt {
            if rt.dt == self.dt {
                return;
            }
        }
        let mut templates: Vec<CellTemplate> = Vec::new();
        let mut cells: Vec<CellRt> = Vec::new();
        let bank = self
            .preloaded
            .as_ref()
            .filter(|b| b.dt == self.dt)
            .map(|b| b.templates.as_slice())
            .unwrap_or(&[]);
        let (mut preload_hits, mut builds) = (0u64, 0u64);
        for net in &self.cells {
            let tmpl = match templates.iter().position(|t| t.net == *net) {
                Some(i) => i,
                None => {
                    match bank.iter().find(|t| t.net == *net) {
                        Some(t) => {
                            preload_hits += 1;
                            templates.push(t.clone());
                        }
                        None => {
                            builds += 1;
                            templates.push(CellTemplate::build(net, self.dt));
                        }
                    }
                    templates.len() - 1
                }
            };
            cells.push(CellRt::new(tmpl, &templates[tmpl]));
        }
        if self.tel.is_enabled() {
            self.tel.add_many(&[
                ("analog.tmpl_preload_hits", preload_hits),
                ("analog.tmpl_builds", builds),
            ]);
        }
        let mut tables = NetTables {
            route: self
                .cells
                .iter()
                .map(|net| vec![Vec::new(); net.outputs.len()])
                .collect(),
            probe: self
                .cells
                .iter()
                .map(|net| vec![Vec::new(); net.outputs.len()])
                .collect(),
        };
        for &((fc, fp), to) in &self.routes {
            tables.route[fc][fp].push(to);
        }
        let mut probe_labels: Vec<String> = Vec::new();
        for (pc, pp, label) in &self.probes {
            let lbl = match probe_labels.iter().position(|l| l == label) {
                Some(i) => i,
                None => {
                    probe_labels.push(label.clone());
                    probe_labels.len() - 1
                }
            };
            tables.probe[*pc][*pp].push(lbl);
        }
        let mut trace_labels: Vec<String> = Vec::new();
        let mut traces = Vec::new();
        for (cell, node, label) in &self.voltage_probes {
            let lbl = match trace_labels.iter().position(|l| l == label) {
                Some(i) => i,
                None => {
                    trace_labels.push(label.clone());
                    trace_labels.len() - 1
                }
            };
            traces.push((*cell, *node, lbl));
        }
        self.rt = Some(Runtime {
            dt: self.dt,
            templates,
            cells,
            tables,
            probe_labels,
            traces,
            trace_labels,
        });
    }

    /// Export the compiled solver templates (building them if needed) for
    /// reuse in another simulation of the same cell library — typically
    /// stored as a `CompiledCache` sidecar under the circuit's IR hash.
    pub fn export_templates(&mut self) -> TemplateBank {
        self.ensure_runtime();
        let rt = self.rt.as_ref().expect("runtime built above");
        TemplateBank {
            dt: rt.dt,
            templates: rt.templates.clone(),
        }
    }

    /// Preload prebuilt solver templates: any cell whose netlist
    /// structurally matches a bank entry (at the same timestep) reuses the
    /// entry's stamp and cold-start factorization instead of rebuilding.
    /// A bank built at a different timestep is kept but never matched.
    /// Telemetry counts `analog.tmpl_preload_hits` / `analog.tmpl_builds`.
    pub fn preload_templates(&mut self, bank: &TemplateBank) {
        self.rt = None;
        self.preloaded = Some(bank.clone());
    }

    /// Resolve the effective worker count for this run.
    fn effective_threads(&self, ncells: usize) -> usize {
        let req = if self.threads_req == 0 {
            // Auto: parallelism only pays once there are enough cells to
            // amortize the per-step rendezvous.
            if ncells < 16 {
                1
            } else {
                let hw = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                hw.min(ncells / 4)
            }
        } else {
            self.threads_req
        };
        req.clamp(1, ncells.max(1))
    }

    /// Run the transient analysis until `t_end` (ps) with the event-gated
    /// engine. Pulse times match [`run_reference`](Self::run_reference);
    /// results are bit-identical at any thread count.
    pub fn run(&mut self, t_end: f64) -> AnalogEvents {
        self.ensure_runtime();
        self.reset();
        let dt = self.dt;
        let shape = self.shape;
        let stride = self.trace_stride.max(1);
        let steps_total = (t_end / dt).ceil() as usize;
        let nthreads = self.effective_threads(self.cells.len());
        let tel_on = self.tel.is_enabled();
        let rt = self.rt.as_mut().expect("runtime built");
        for (cell, port, times) in &self.stimuli {
            for &tc in times {
                rt.cells[*cell].injections.push((tc, *port, false));
            }
        }
        let ncells = rt.cells.len();
        let templates: &[CellTemplate] = &rt.templates;
        let tables: &NetTables = &rt.tables;
        let cells: &mut Vec<CellRt> = &mut rt.cells;
        let mut rec = PulseRec {
            pulse_buf: vec![Vec::new(); rt.probe_labels.len()],
            ..Default::default()
        };
        let mut trace_buf: Vec<Vec<(f64, f64)>> = vec![Vec::new(); rt.trace_labels.len()];
        let traces: &[(usize, usize, usize)] = &rt.traces;
        let mut max_active = 0usize;

        if nthreads <= 1 {
            let mut t = 0.0f64;
            for step in 0..steps_total {
                t += dt;
                if step % stride == 0 {
                    for &(cell, node, lbl) in traces {
                        let v = cells[cell].v.get(node).copied().unwrap_or(0.0);
                        trace_buf[lbl].push((t, v));
                    }
                }
                phase1(cells, templates, t, dt, shape);
                phase2(cells, templates, tables, &mut rec, t, dt, shape);
                if tel_on {
                    max_active = max_active.max(cells.iter().filter(|c| c.solved).count());
                }
            }
        } else {
            let shared = CellsPtr {
                ptr: cells.as_mut_ptr(),
                len: ncells,
            };
            // Round-robin index sets: worker w owns cells w, w+T, w+2T, …
            // (offset 0 belongs to the main thread).
            let start_bar = SpinBarrier::new(nthreads);
            let end_bar = SpinBarrier::new(nthreads);
            let done = AtomicBool::new(false);
            std::thread::scope(|s| {
                let sb = &start_bar;
                let eb = &end_bar;
                let df = &done;
                for offset in 1..nthreads {
                    s.spawn(move || {
                        // Capture the whole Send wrapper, not just its
                        // (non-Send) raw-pointer field.
                        let shared = shared;
                        let mut sense_s = false;
                        let mut sense_e = false;
                        // Worker-local time accumulates the same f64 ops as
                        // the main thread, so it is bitwise identical.
                        let mut tw = 0.0f64;
                        loop {
                            sb.wait(&mut sense_s);
                            if df.load(Ordering::Acquire) {
                                break;
                            }
                            tw += dt;
                            unsafe {
                                phase1_strided(shared, offset, nthreads, templates, tw, dt, shape);
                            }
                            eb.wait(&mut sense_e);
                        }
                    });
                }
                let mut sense_s = false;
                let mut sense_e = false;
                let mut t = 0.0f64;
                for step in 0..steps_total {
                    t += dt;
                    {
                        let all =
                            unsafe { std::slice::from_raw_parts_mut(shared.ptr, shared.len) };
                        if step % stride == 0 {
                            for &(cell, node, lbl) in traces {
                                let v = all[cell].v.get(node).copied().unwrap_or(0.0);
                                trace_buf[lbl].push((t, v));
                            }
                        }
                    }
                    start_bar.wait(&mut sense_s);
                    unsafe {
                        phase1_strided(shared, 0, nthreads, templates, t, dt, shape);
                    }
                    end_bar.wait(&mut sense_e);
                    {
                        let all =
                            unsafe { std::slice::from_raw_parts_mut(shared.ptr, shared.len) };
                        phase2(all, templates, tables, &mut rec, t, dt, shape);
                        if tel_on {
                            max_active =
                                max_active.max(all.iter().filter(|c| c.solved).count());
                        }
                    }
                }
                done.store(true, Ordering::Release);
                start_bar.wait(&mut sense_s);
            });
        }

        let mut ev = AnalogEvents {
            jjs: self.cells.iter().map(|c| c.jj_count()).sum(),
            lines: self.cells.iter().map(|c| c.line_count()).sum(),
            steps: steps_total,
            ..Default::default()
        };
        for (lbl, buf) in rt.probe_labels.iter().zip(rec.pulse_buf.iter()) {
            if !buf.is_empty() {
                ev.pulses.insert(lbl.clone(), buf.clone());
            }
        }
        for (lbl, buf) in rt.trace_labels.iter().zip(trace_buf.iter()) {
            if !buf.is_empty() {
                ev.traces.insert(lbl.clone(), buf.clone());
            }
        }

        if self.tel.is_enabled() {
            // Per-cell counters were accumulated locally; fold them in
            // cell-index order so the flush is thread-count independent.
            let mut totals = CellStats::default();
            let mut by_type: std::collections::BTreeMap<&str, CellTally> = Default::default();
            for cell in rt.cells.iter() {
                let st = &cell.stats;
                totals.active_steps += st.active_steps;
                totals.resolves += st.resolves;
                totals.newton_iters += st.newton_iters;
                totals.refactorizations += st.refactorizations;
                totals.refactor_avoided += st.refactor_avoided;
                totals.fired += st.fired;
                let tally = by_type.entry(templates[cell.tmpl].net.name.as_str()).or_default();
                tally.dispatches += st.active_steps + st.resolves;
                tally.transitions += st.newton_iters;
                tally.fired += st.fired;
            }
            let cell_steps = (ncells as u64) * (steps_total as u64);
            self.tel.add_many(&[
                ("analog.runs", 1),
                ("analog.steps", steps_total as u64),
                ("analog.cell_steps", cell_steps),
                ("analog.solves", totals.active_steps + totals.resolves),
                (
                    "analog.solves_skipped",
                    cell_steps.saturating_sub(totals.active_steps),
                ),
                ("analog.resolves", totals.resolves),
                ("analog.newton_iters", totals.newton_iters),
                ("analog.refactorizations", totals.refactorizations),
                ("analog.refactor_avoided", totals.refactor_avoided),
                ("analog.pulses_routed", rec.routed),
                ("analog.pulses_recorded", rec.recorded),
            ]);
            self.tel.peak("analog.peak_active_cells", max_active as u64);
            for (name, tally) in &by_type {
                self.tel.add_cell(name, tally);
            }
        }
        ev
    }
}

impl Default for AnalogSim {
    fn default() -> Self {
        Self::new()
    }
}

// ======================================================================
// The reference engine: the original solve-everything-every-step
// algorithm, kept verbatim as the golden baseline the gated engine is
// tested against and as the honest Table-2 "cost of schematic
// simulation" datapoint. Its per-step arithmetic is the specification
// the optimized path must reproduce.
// ======================================================================

/// Runtime state of one cell instance under the reference engine.
#[derive(Debug)]
struct NaiveCell {
    net: CellNetlist,
    v: Vec<f64>,
    il: Vec<f64>,
    phi: Vec<f64>,
    slips: Vec<u64>,
    injections: Vec<(f64, usize, bool)>,
    seen: Vec<u64>,
    fires: u64,
    reported_fires: u64,
    overdrives: Vec<f64>,
    n_unknowns: usize,
    inductor_ids: Vec<usize>,
    jj_ids: Vec<usize>,
}

impl NaiveCell {
    fn new(net: CellNetlist) -> Self {
        let inductor_ids: Vec<usize> = net
            .components
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c, Component::Inductor { .. }))
            .map(|(i, _)| i)
            .collect();
        let jj_ids: Vec<usize> = net
            .components
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c, Component::Jj { .. }))
            .map(|(i, _)| i)
            .collect();
        let n_unknowns = (net.nodes - 1) + inductor_ids.len();
        NaiveCell {
            v: vec![0.0; net.nodes],
            il: vec![0.0; inductor_ids.len()],
            phi: vec![0.0; jj_ids.len()],
            slips: vec![0; jj_ids.len()],
            injections: Vec::new(),
            seen: vec![0; net.inputs.len()],
            fires: 0,
            reported_fires: 0,
            overdrives: Vec::new(),
            n_unknowns,
            inductor_ids,
            jj_ids,
            net,
        }
    }

    /// Advance one backward-Euler step of size `dt` ending at time `t`.
    /// Returns the output ports that emitted a pulse during this step.
    fn step(&mut self, t: f64, dt: f64, shape: PulseShape) -> Vec<usize> {
        let n = self.n_unknowns;
        let nn = self.net.nodes - 1; // real (non-ground) nodes
        let mut a = vec![0.0f64; n * n];
        let mut rhs = vec![0.0f64; n];
        let mut v_new: Vec<f64> = self.v.clone();

        // External injections (inputs + decision overdrives) at this step.
        // Each injection also counts as "input arrived" for the decision
        // rule the first time its center passes.
        let mut inj = vec![0.0f64; self.net.nodes];
        for (tc, port, counted) in self.injections.iter_mut() {
            let x = (t - *tc) / shape.sigma;
            if x.abs() < 6.0 {
                inj[self.net.inputs[*port]] += shape.ipk * (-0.5 * x * x).exp();
            }
            if t >= *tc && !*counted {
                *counted = true;
                self.seen[*port] += 1;
            }
        }
        if let Some((_, fire_jj)) = self.net.decision {
            if let Component::Jj { a: node, ic, .. } = self.net.components[fire_jj] {
                for &tc in &self.overdrives {
                    let x = (t - tc) / shape.sigma;
                    if x.abs() < 6.0 {
                        // Push the decision junction well past critical.
                        inj[node] += 1.6 * ic * (-0.5 * x * x).exp();
                    }
                }
            }
        }

        // Newton iteration on the new node voltages.
        for _iter in 0..25 {
            for e in a.iter_mut() {
                *e = 0.0;
            }
            for e in rhs.iter_mut() {
                *e = 0.0;
            }
            let mut l_idx = 0usize;
            let mut j_idx = 0usize;
            let idx = |node: Node| node - 1; // unknown index of a node
            let stamp = |a: &mut Vec<f64>, r: usize, c: usize, v: f64| a[r * n + c] += v;
            for comp in &self.net.components {
                match *comp {
                    Component::Resistor { a: na, b: nb, r } => {
                        let g = 1.0 / r;
                        if na != 0 {
                            stamp(&mut a, idx(na), idx(na), g);
                        }
                        if nb != 0 {
                            stamp(&mut a, idx(nb), idx(nb), g);
                        }
                        if na != 0 && nb != 0 {
                            stamp(&mut a, idx(na), idx(nb), -g);
                            stamp(&mut a, idx(nb), idx(na), -g);
                        }
                    }
                    Component::Inductor { a: na, b: nb, l } => {
                        // Branch row: V_a - V_b - (L/dt)(I - I_prev) = 0.
                        let row = nn + l_idx;
                        if na != 0 {
                            stamp(&mut a, row, idx(na), 1.0);
                            stamp(&mut a, idx(na), row, 1.0);
                        }
                        if nb != 0 {
                            stamp(&mut a, row, idx(nb), -1.0);
                            stamp(&mut a, idx(nb), row, -1.0);
                        }
                        stamp(&mut a, row, row, -l / dt);
                        rhs[row] += -(l / dt) * self.il[l_idx];
                        l_idx += 1;
                    }
                    Component::Jj { a: na, ic, r, c } => {
                        let k = std::f64::consts::PI / PHI0; // dφ = k (V+Vold) dt (trapezoid)
                        let vg = v_new[na];
                        let phi_new = self.phi[j_idx] + k * dt * (self.v[na] + vg);
                        let g_sin = ic * phi_new.cos() * k * dt;
                        let i_sin = ic * phi_new.sin();
                        let g = 1.0 / r + c / dt + g_sin;
                        let i_eq = i_sin - g_sin * vg - (c / dt) * self.v[na];
                        let ui = idx(na);
                        stamp(&mut a, ui, ui, g);
                        rhs[ui] -= i_eq;
                        j_idx += 1;
                    }
                    Component::Bias { node, i } => {
                        if node != 0 {
                            rhs[idx(node)] += i;
                        }
                    }
                }
            }
            for (node, &cur) in inj.iter().enumerate() {
                if node != 0 && cur != 0.0 {
                    rhs[idx(node)] += cur;
                }
            }

            // Dense Gaussian elimination with partial pivoting.
            let mut x = rhs.clone();
            let mut m = a.clone();
            for col in 0..n {
                let mut piv = col;
                for r in col + 1..n {
                    if m[r * n + col].abs() > m[piv * n + col].abs() {
                        piv = r;
                    }
                }
                if m[piv * n + col].abs() < 1e-12 {
                    continue; // singular row: leave as-is
                }
                if piv != col {
                    for c2 in 0..n {
                        m.swap(col * n + c2, piv * n + c2);
                    }
                    x.swap(col, piv);
                }
                let d = m[col * n + col];
                for r in col + 1..n {
                    let f = m[r * n + col] / d;
                    if f == 0.0 {
                        continue;
                    }
                    for c2 in col..n {
                        m[r * n + c2] -= f * m[col * n + c2];
                    }
                    x[r] -= f * x[col];
                }
            }
            for col in (0..n).rev() {
                let mut s = x[col];
                for c2 in col + 1..n {
                    s -= m[col * n + c2] * x[c2];
                }
                let d = m[col * n + col];
                x[col] = if d.abs() < 1e-12 { 0.0 } else { s / d };
            }

            // Convergence check on node voltages.
            let mut delta = 0.0f64;
            for node in 1..self.net.nodes {
                let nv = x[node - 1];
                delta = delta.max((nv - v_new[node]).abs());
                v_new[node] = nv;
            }
            if delta < 1e-9 {
                // Commit inductor currents.
                self.il.copy_from_slice(&x[nn..nn + self.inductor_ids.len()]);
                break;
            }
            if _iter == 24 {
                self.il.copy_from_slice(&x[nn..nn + self.inductor_ids.len()]);
            }
        }

        // Commit phases and detect slips.
        let mut fired_ports = Vec::new();
        let k = std::f64::consts::PI / PHI0;
        for (j_idx, &comp_idx) in self.jj_ids.clone().iter().enumerate() {
            if let Component::Jj { a: na, .. } = self.net.components[comp_idx] {
                let dphi = k * dt * (self.v[na] + v_new[na]);
                let old = self.phi[j_idx];
                let new = old + dphi;
                // Count crossings of odd multiples of π (pulse centers).
                let crossings = |p: f64| {
                    ((p + std::f64::consts::PI) / (2.0 * std::f64::consts::PI)).floor() as i64
                };
                let slipped = crossings(new) - crossings(old);
                self.phi[j_idx] = new;
                if slipped > 0 {
                    self.slips[j_idx] += slipped as u64;
                    for (port, &out_comp) in self.net.outputs.iter().enumerate() {
                        if out_comp == comp_idx {
                            if self.net.decision.is_some() {
                                // Debounce: one output pulse per decision
                                // fire, however vigorously the junction spun.
                                while self.reported_fires < self.fires {
                                    self.reported_fires += 1;
                                    fired_ports.push(port);
                                }
                            } else {
                                for _ in 0..slipped {
                                    fired_ports.push(port);
                                }
                            }
                        }
                    }
                }
            }
        }
        self.v = v_new;

        // Decision rule: schedule an overdrive when the condition is met.
        if let Some((rule, _)) = self.net.decision {
            let should_fire = match rule {
                Decision::Coincidence => self.seen.iter().copied().min().unwrap_or(0) > self.fires,
                Decision::FirstArrival => {
                    // Fire on the 1st, 3rd, 5th… input pulse overall.
                    let total: u64 = self.seen.iter().sum();
                    total > 2 * self.fires
                }
                Decision::Merge => self.seen.iter().sum::<u64>() > self.fires,
            };
            if should_fire {
                self.fires += 1;
                self.overdrives.push(t + self.net.decision_delay);
            }
        }

        // Drop spent injections.
        self.injections
            .retain(|&(tc, _, _)| t - tc < 6.0 * shape.sigma);
        self.overdrives.retain(|&tc| t - tc < 6.0 * shape.sigma);
        fired_ports
    }
}

impl AnalogSim {
    /// Run the transient analysis until `t_end` (ps) with the reference
    /// (ungated, serial, solve-every-cell-every-step) engine — the golden
    /// baseline for [`run`](Self::run) and the honest "cost of schematic
    /// simulation" datapoint in the Table-2 comparison. Builds fresh state
    /// per call, so it is always re-runnable.
    pub fn run_reference(&self, t_end: f64) -> AnalogEvents {
        let mut cells: Vec<NaiveCell> = self.cells.iter().cloned().map(NaiveCell::new).collect();
        let mut ev = AnalogEvents {
            jjs: cells.iter().map(|c| c.net.jj_count()).sum(),
            lines: cells.iter().map(|c| c.net.line_count()).sum(),
            ..Default::default()
        };
        // Schedule external stimuli.
        for (cell, port, times) in &self.stimuli {
            for &t in times {
                cells[*cell].injections.push((t, *port, false));
            }
        }
        let stride = self.trace_stride.max(1);
        let steps = (t_end / self.dt).ceil() as usize;
        let mut t = 0.0;
        for step in 0..steps {
            t += self.dt;
            ev.steps += 1;
            if step % stride == 0 {
                for (cell, node, label) in &self.voltage_probes {
                    let v = cells[*cell].v.get(*node).copied().unwrap_or(0.0);
                    ev.traces.entry(label.clone()).or_default().push((t, v));
                }
            }
            for ci in 0..cells.len() {
                let fired = cells[ci].step(t, self.dt, self.shape);
                for port in fired {
                    for &((fc, fp), (tc, tp)) in &self.routes {
                        if fc == ci && fp == port {
                            cells[tc].injections.push((t + 1.0, tp, false));
                        }
                    }
                    for (pc, pp, label) in &self.probes {
                        if *pc == ci && *pp == port {
                            ev.pulses.entry(label.clone()).or_default().push(t);
                        }
                    }
                }
            }
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{jtl_cell, merger_cell};

    #[test]
    fn preloaded_templates_skip_rebuilds_and_keep_results_bit_identical() {
        let build = || {
            let mut sim = AnalogSim::new();
            let a = sim.add_cell(jtl_cell());
            let b = sim.add_cell(jtl_cell());
            let m = sim.add_cell(merger_cell());
            sim.connect((a, 0), (m, 0));
            sim.connect((b, 0), (m, 1));
            sim.stimulate(a, 0, &[20.0]);
            sim.stimulate(b, 0, &[35.0]);
            sim.probe(m, 0, "OUT");
            sim
        };
        let mut cold = build();
        let baseline = cold.run(80.0);
        let bank = cold.export_templates();
        assert_eq!(bank.len(), 2, "two distinct cell types");
        assert!(!bank.is_empty());
        assert_eq!(bank.dt(), 0.1);

        let tel = Telemetry::new();
        let mut warm = build();
        warm.set_telemetry(&tel);
        warm.preload_templates(&bank);
        let replay = warm.run(80.0);
        assert_eq!(replay, baseline, "preloading must not change results");
        let report = tel.report();
        assert_eq!(report.counter("analog.tmpl_preload_hits"), 2);
        assert_eq!(report.counter("analog.tmpl_builds"), 0);
    }

    #[test]
    fn a_bank_built_at_a_different_timestep_is_ignored() {
        let mut donor = AnalogSim::new();
        donor.dt = 0.05;
        donor.add_cell(jtl_cell());
        let bank = donor.export_templates();

        let tel = Telemetry::new();
        let mut sim = AnalogSim::new();
        sim.set_telemetry(&tel);
        sim.add_cell(jtl_cell());
        sim.stimulate(0, 0, &[20.0]);
        sim.probe(0, 0, "OUT");
        sim.preload_templates(&bank);
        let _ = sim.run(40.0);
        let report = tel.report();
        assert_eq!(report.counter("analog.tmpl_preload_hits"), 0);
        assert_eq!(report.counter("analog.tmpl_builds"), 1);
    }

    #[test]
    fn template_banks_ride_the_compiled_cache_sidecar() {
        use std::sync::Arc;
        let mut sim = AnalogSim::new();
        sim.add_cell(jtl_cell());
        let bank = Arc::new(sim.export_templates());

        let cache = rlse_core::ir::CompiledCache::new();
        let hash = 0xfeed_beef_u64;
        assert!(cache.sidecar::<TemplateBank>(hash).is_none());
        cache.put_sidecar(hash, Arc::clone(&bank));
        let got = cache.sidecar::<TemplateBank>(hash).expect("stored bank");
        assert_eq!(got.len(), bank.len());
        assert_eq!(got.dt(), bank.dt());
    }

    #[test]
    fn voltage_trace_captures_the_pulse() {
        let mut sim = AnalogSim::new();
        let j = sim.add_cell(jtl_cell());
        sim.stimulate(j, 0, &[20.0]);
        sim.probe(j, 0, "OUT");
        sim.trace_node(j, 3, "V_OUT");
        let ev = sim.run(60.0);
        let tr = &ev.traces["V_OUT"];
        assert!(!tr.is_empty());
        // The output junction's voltage peaks around the pulse and is ~0
        // long before it.
        let peak = tr.iter().map(|(_, v)| v.abs()).fold(0.0, f64::max);
        assert!(peak > 0.1, "peak {peak} mV");
        // After the bias turn-on transient settles and before the pulse
        // arrives, the junction is quiescent.
        let quiescent: f64 = tr
            .iter()
            .filter(|(t, _)| *t > 12.0 && *t < 16.0)
            .map(|(_, v)| v.abs())
            .fold(0.0, f64::max);
        assert!(quiescent < 0.05, "quiescent {quiescent} mV");
        assert!(peak > 4.0 * quiescent.max(1e-3));
    }

    #[test]
    fn render_trace_produces_an_oscillogram() {
        let mut sim = AnalogSim::new();
        let j = sim.add_cell(jtl_cell());
        sim.stimulate(j, 0, &[20.0]);
        sim.trace_node(j, 2, "V");
        let ev = sim.run(40.0);
        let plot = ev.render_trace("V", 60, 9);
        assert!(plot.contains('*'));
        assert!(plot.contains("mV"));
        assert_eq!(ev.render_trace("missing", 60, 9), "(no trace 'missing')\n");
    }

    #[test]
    fn slip_counting_is_monotone() {
        let mut sim = AnalogSim::new();
        let j = sim.add_cell(jtl_cell());
        sim.stimulate(j, 0, &[20.0, 50.0, 80.0]);
        sim.probe(j, 0, "OUT");
        let ev = sim.run(120.0);
        let out = &ev.pulses["OUT"];
        assert_eq!(out.len(), 3);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn gated_engine_matches_reference_on_a_jtl_chain() {
        let mut sim = AnalogSim::new();
        let a = sim.add_cell(jtl_cell());
        let b = sim.add_cell(jtl_cell());
        let c = sim.add_cell(jtl_cell());
        sim.connect((a, 0), (b, 0));
        sim.connect((b, 0), (c, 0));
        sim.stimulate(a, 0, &[20.0, 45.0]);
        sim.probe(c, 0, "OUT");
        let golden = sim.run_reference(90.0);
        let gated = sim.run(90.0);
        assert_eq!(gated.pulses, golden.pulses);
    }

    #[test]
    fn gated_engine_matches_reference_on_a_decision_cell() {
        let mut sim = AnalogSim::new();
        let m = sim.add_cell(merger_cell());
        sim.stimulate(m, 0, &[20.0]);
        sim.stimulate(m, 1, &[48.0]);
        sim.probe(m, 0, "Q");
        let golden = sim.run_reference(90.0);
        let gated = sim.run(90.0);
        assert_eq!(gated.pulses, golden.pulses);
    }

    #[test]
    fn run_is_repeatable_after_reset() {
        // Regression: `run` used to re-schedule stimuli on top of stale
        // state, so a second call produced garbage.
        let mut sim = AnalogSim::new();
        let a = sim.add_cell(jtl_cell());
        let b = sim.add_cell(jtl_cell());
        sim.connect((a, 0), (b, 0));
        sim.stimulate(a, 0, &[20.0]);
        sim.probe(b, 0, "OUT");
        sim.trace_node(b, 3, "V");
        let first = sim.run(60.0);
        let second = sim.run(60.0);
        assert_eq!(first, second);
        assert_eq!(first.pulses["OUT"].len(), 1);
    }

    #[test]
    fn trace_stride_zero_is_clamped_not_a_panic() {
        let mut sim = AnalogSim::new();
        let j = sim.add_cell(jtl_cell());
        sim.stimulate(j, 0, &[20.0]);
        sim.trace_node(j, 2, "V");
        sim.trace_stride = 0;
        let ev = sim.run(30.0);
        // Clamped to every-step sampling.
        assert_eq!(ev.traces["V"].len(), ev.steps);
        let r = sim.run_reference(30.0);
        assert_eq!(r.traces["V"].len(), r.steps);
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        let mut sim = AnalogSim::new();
        let mut prev = None;
        for _ in 0..6 {
            let c = sim.add_cell(jtl_cell());
            if let Some(p) = prev {
                sim.connect((p, 0), (c, 0));
            }
            prev = Some(c);
        }
        sim.stimulate(0, 0, &[20.0, 40.0]);
        sim.probe(5, 0, "OUT");
        sim.set_threads(1);
        let one = sim.run(90.0);
        sim.set_threads(4);
        let four = sim.run(90.0);
        assert_eq!(one, four);
    }
}

