//! Map a pulse-level [`Circuit`] onto an
//! [`AnalogSim`]: every machine instance becomes its schematic netlist,
//! every wire a pulse route, every input source a stimulus, and every
//! circuit output a probe. This is how the Table 2 / Fig. 16 baselines are
//! produced from the *same* design descriptions as the pulse simulations.

use crate::cells::netlist_for;
use crate::engine::AnalogSim;
use rlse_core::circuit::{Circuit, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Error raised when a circuit uses a cell with no analog model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedCell {
    /// Machine name lacking a netlist.
    pub cell: String,
}

impl fmt::Display for UnsupportedCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no analog netlist for cell '{}'", self.cell)
    }
}

impl std::error::Error for UnsupportedCell {}

/// Build an analog simulation mirroring `circ`.
///
/// # Errors
///
/// Fails with [`UnsupportedCell`] if the circuit contains a machine without
/// an analog netlist (only JTL, S, M, C, and C_INV are modelled) or a hole.
pub fn from_circuit(circ: &Circuit) -> Result<AnalogSim, UnsupportedCell> {
    let mut sim = AnalogSim::new();
    let mut cell_of: HashMap<usize, usize> = HashMap::new();
    // Instantiate cells.
    for n in 0..circ.node_count() {
        let node = NodeId(n);
        if let Some(spec) = circ.node_machine(node) {
            let net = netlist_for(spec.name()).ok_or_else(|| UnsupportedCell {
                cell: spec.name().to_string(),
            })?;
            let idx = sim.add_cell(net);
            cell_of.insert(n, idx);
        } else if circ.node_source_times(node).is_none() {
            return Err(UnsupportedCell {
                cell: circ.node_wire_name(node),
            });
        }
    }
    // Wires: connect, stimulate, probe.
    for wi in 0..circ.wire_count() {
        let w = circ.wire_at(wi);
        if !circ.wire_has_driver(w) {
            continue; // retired loopback placeholder
        }
        let (driver, dport) = circ.wire_driver(w);
        let sink = circ.wire_sink(w);
        match (circ.node_source_times(driver), sink) {
            (Some(times), Some((snode, sport))) => {
                sim.stimulate(cell_of[&snode.0], sport, times);
            }
            (Some(_), None) => {} // dangling input: nothing to drive
            (None, Some((snode, sport))) => {
                sim.connect((cell_of[&driver.0], dport), (cell_of[&snode.0], sport));
            }
            (None, None) => {
                sim.probe(cell_of[&driver.0], dport, circ.wire_name(w));
            }
        }
    }
    Ok(sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlse_cells::{jtl, s};

    #[test]
    fn jtl_chain_synthesizes_and_runs() {
        let mut circ = Circuit::new();
        let a = circ.inp_at(&[20.0], "A");
        let q1 = jtl(&mut circ, a).unwrap();
        let q2 = jtl(&mut circ, q1).unwrap();
        circ.inspect(q2, "Q");
        let mut sim = from_circuit(&circ).unwrap();
        let ev = sim.run(100.0);
        assert_eq!(ev.pulses.get("Q").map(Vec::len), Some(1));
        assert_eq!(ev.jjs, 4);
    }

    #[test]
    fn splitter_fanout_synthesizes() {
        let mut circ = Circuit::new();
        let a = circ.inp_at(&[20.0], "A");
        let (l, r) = s(&mut circ, a).unwrap();
        circ.inspect(l, "L");
        circ.inspect(r, "R");
        let mut sim = from_circuit(&circ).unwrap();
        let ev = sim.run(80.0);
        assert_eq!(ev.pulses.get("L").map(Vec::len), Some(1));
        assert_eq!(ev.pulses.get("R").map(Vec::len), Some(1));
    }

    #[test]
    fn unsupported_cells_error() {
        use rlse_cells::and_s;
        let mut circ = Circuit::new();
        let a = circ.inp_at(&[20.0], "A");
        let b = circ.inp_at(&[30.0], "B");
        let clk = circ.inp_at(&[50.0], "CLK");
        let q = and_s(&mut circ, a, b, clk).unwrap();
        circ.inspect(q, "Q");
        assert!(from_circuit(&circ).is_err());
    }
}
