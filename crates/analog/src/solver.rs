//! Dense-LU solver machinery for the event-gated transient engine: the
//! split MNA stamp (constant linear part vs. per-iteration JJ corrections),
//! reusable LU factorizations, and per-netlist solver templates shared by
//! every structurally identical cell instance (the same dedup trick
//! `rlse-core::compiled` uses for machines).
//!
//! The arithmetic is deliberately bit-compatible with the reference
//! engine's inline Gaussian elimination: the pivoting rule, the singular
//! guards, and the order of the row operations applied to the right-hand
//! side are identical, so a factor-then-solve on the same matrix produces
//! the same floating-point result as one pass of the reference elimination.

use crate::engine::{CellNetlist, Component, Decision, PHI0};

/// Pivot magnitudes below this are treated as singular, matching the
/// reference elimination's guard.
const SINGULAR_TOL: f64 = 1e-12;

/// A dense LU factorization with partial pivoting, storing the multipliers
/// in the strict lower triangle and the pivot choice per column, so one
/// factorization can solve many right-hand sides.
#[derive(Debug, Clone)]
pub(crate) struct DenseLu {
    n: usize,
    /// Row-major packed factors (upper triangle + unit-lower multipliers).
    m: Vec<f64>,
    /// Pivot row chosen at each column.
    piv: Vec<u32>,
    /// Columns whose best pivot was below [`SINGULAR_TOL`]; their
    /// elimination is skipped and their solution component forced to 0,
    /// exactly as in the reference elimination.
    sing: Vec<bool>,
}

impl DenseLu {
    pub(crate) fn new(n: usize) -> Self {
        DenseLu {
            n,
            m: vec![0.0; n * n],
            piv: vec![0; n],
            sing: vec![false; n],
        }
    }

    /// Load the base matrix `a0` (length `n*n`) into the factor workspace.
    pub(crate) fn load(&mut self, a0: &[f64]) {
        self.m.copy_from_slice(a0);
    }

    /// Add `v` to the diagonal entry of unknown `ui` (the JJ correction).
    pub(crate) fn add_diag(&mut self, ui: usize, v: f64) {
        self.m[ui * self.n + ui] += v;
    }

    /// Factor the loaded matrix in place (partial pivoting, reference
    /// pivot rule).
    pub(crate) fn factor(&mut self) {
        let n = self.n;
        let m = &mut self.m;
        for col in 0..n {
            let mut piv = col;
            for r in col + 1..n {
                if m[r * n + col].abs() > m[piv * n + col].abs() {
                    piv = r;
                }
            }
            self.piv[col] = piv as u32;
            if m[piv * n + col].abs() < SINGULAR_TOL {
                self.sing[col] = true;
                continue;
            }
            self.sing[col] = false;
            if piv != col {
                for c2 in 0..n {
                    m.swap(col * n + c2, piv * n + c2);
                }
            }
            let d = m[col * n + col];
            for r in col + 1..n {
                let f = m[r * n + col] / d;
                m[r * n + col] = f;
                if f == 0.0 {
                    continue;
                }
                for c2 in col + 1..n {
                    m[r * n + c2] -= f * m[col * n + c2];
                }
            }
        }
    }

    /// Solve `A x = b` in place, applying the recorded row swaps and
    /// multipliers in the same order the reference elimination applies them
    /// to its augmented right-hand side.
    pub(crate) fn solve(&self, b: &mut [f64]) {
        let n = self.n;
        let m = &self.m;
        for col in 0..n {
            if self.sing[col] {
                continue;
            }
            let piv = self.piv[col] as usize;
            if piv != col {
                b.swap(col, piv);
            }
            for r in col + 1..n {
                let f = m[r * n + col];
                if f == 0.0 {
                    continue;
                }
                b[r] -= f * b[col];
            }
        }
        for col in (0..n).rev() {
            let mut s = b[col];
            for c2 in col + 1..n {
                s -= m[col * n + c2] * b[c2];
            }
            let d = m[col * n + col];
            b[col] = if d.abs() < SINGULAR_TOL { 0.0 } else { s / d };
        }
    }
}

/// Per-junction solver data derived from one [`Component::Jj`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct JjTmpl {
    /// The junction's node.
    pub node: usize,
    /// Unknown (row) index of that node.
    pub ui: usize,
    /// Critical current (mA).
    pub ic: f64,
    /// Static conductance `1/R + C/dt`, precomputed with the reference
    /// engine's expression so the fused diagonal add is bit-identical.
    pub s_static: f64,
    /// `C/dt`, for the companion-model history current.
    pub c_over_dt: f64,
}

/// One right-hand-side contribution, replayed in netlist component order so
/// the floating-point accumulation order matches the reference stamp loop.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RhsOp {
    /// Inductor branch row: `rhs[row] += -(L/dt) * il[il_idx]`.
    L {
        row: usize,
        l_over_dt: f64,
        il_idx: usize,
    },
    /// JJ companion current: `rhs[ui] -= i_eq` for junction `j`.
    Jj { j: usize },
    /// Constant bias: `rhs[ui] += i`.
    Bias { ui: usize, i: f64 },
}

/// The per-netlist solver template: everything derivable from a
/// [`CellNetlist`] and the timestep, shared by all structurally identical
/// cell instances. Holds the constant part of the MNA stamp (resistors,
/// inductors, biases — stamped once at build), the per-junction correction
/// descriptors, and the LU factorization of the cold-start (φ = 0) matrix
/// that every instance uses until its junction operating points move.
#[derive(Debug, Clone)]
pub(crate) struct CellTemplate {
    /// The netlist this template was built from (structural dedup key).
    pub net: CellNetlist,
    /// Number of MNA unknowns (non-ground nodes + inductor branches).
    pub n: usize,
    /// Number of non-ground nodes.
    pub nn: usize,
    /// Total node count including ground.
    pub nodes: usize,
    /// Constant linear stamp (R, L, C-independent entries), row-major. The
    /// JJ static conductances are *not* folded in — they are added together
    /// with the per-iteration `g_sin` correction as one fused value, which
    /// keeps the diagonal arithmetic identical to the reference stamp.
    pub a0: Vec<f64>,
    /// Right-hand-side program, in netlist component order.
    pub rhs_prog: Vec<RhsOp>,
    /// Junction descriptors, in netlist order.
    pub jjs: Vec<JjTmpl>,
    /// Number of inductor branch unknowns.
    pub n_l: usize,
    /// For each junction (netlist order), the output ports monitoring it.
    pub ports_of_jj: Vec<Vec<usize>>,
    /// Injection node per input port.
    pub inputs: Vec<usize>,
    /// Decision rule with the overdriven junction's node and critical
    /// current, pre-resolved from the component index.
    pub decision: Option<(Decision, usize, f64)>,
    /// Condition-to-overdrive latency (ps).
    pub decision_delay: f64,
    /// LU factorization of `a0` plus the φ = 0 junction corrections — the
    /// shared cold-start factorization every instance begins with.
    pub lu_zero: DenseLu,
    /// The `g_sin` values (per junction) the shared factorization was
    /// computed at: `ic · cos(0) · k · dt`.
    pub g_zero: Vec<f64>,
}

impl CellTemplate {
    /// Build the template for `net` at timestep `dt`.
    pub(crate) fn build(net: &CellNetlist, dt: f64) -> Self {
        let nn = net.nodes - 1;
        let n_l = net
            .components
            .iter()
            .filter(|c| matches!(c, Component::Inductor { .. }))
            .count();
        let n = nn + n_l;
        let k = std::f64::consts::PI / PHI0;
        let mut a0 = vec![0.0f64; n * n];
        let mut rhs_prog = Vec::new();
        let mut jjs = Vec::new();
        let mut l_idx = 0usize;
        let idx = |node: usize| node - 1;
        {
            let stamp = |a: &mut Vec<f64>, r: usize, c: usize, v: f64| a[r * n + c] += v;
            for comp in &net.components {
                match *comp {
                    Component::Resistor { a: na, b: nb, r } => {
                        let g = 1.0 / r;
                        if na != 0 {
                            stamp(&mut a0, idx(na), idx(na), g);
                        }
                        if nb != 0 {
                            stamp(&mut a0, idx(nb), idx(nb), g);
                        }
                        if na != 0 && nb != 0 {
                            stamp(&mut a0, idx(na), idx(nb), -g);
                            stamp(&mut a0, idx(nb), idx(na), -g);
                        }
                    }
                    Component::Inductor { a: na, b: nb, l } => {
                        let row = nn + l_idx;
                        if na != 0 {
                            stamp(&mut a0, row, idx(na), 1.0);
                            stamp(&mut a0, idx(na), row, 1.0);
                        }
                        if nb != 0 {
                            stamp(&mut a0, row, idx(nb), -1.0);
                            stamp(&mut a0, idx(nb), row, -1.0);
                        }
                        stamp(&mut a0, row, row, -l / dt);
                        rhs_prog.push(RhsOp::L {
                            row,
                            l_over_dt: l / dt,
                            il_idx: l_idx,
                        });
                        l_idx += 1;
                    }
                    Component::Jj { a: na, ic, r, c } => {
                        rhs_prog.push(RhsOp::Jj { j: jjs.len() });
                        jjs.push(JjTmpl {
                            node: na,
                            ui: idx(na),
                            ic,
                            s_static: 1.0 / r + c / dt,
                            c_over_dt: c / dt,
                        });
                    }
                    Component::Bias { node, i } => {
                        if node != 0 {
                            rhs_prog.push(RhsOp::Bias { ui: idx(node), i });
                        }
                    }
                }
            }
        }
        let ports_of_jj = jjs
            .iter()
            .enumerate()
            .map(|(j, _)| {
                // Recover the component index of junction j to match ports.
                let comp_idx = net
                    .components
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| matches!(c, Component::Jj { .. }))
                    .nth(j)
                    .map(|(i, _)| i)
                    .expect("jj exists");
                net.outputs
                    .iter()
                    .enumerate()
                    .filter(|(_, &oc)| oc == comp_idx)
                    .map(|(port, _)| port)
                    .collect()
            })
            .collect();
        let decision = net.decision.map(|(rule, fire_jj)| {
            match net.components[fire_jj] {
                Component::Jj { a: node, ic, .. } => (rule, node, ic),
                _ => panic!("decision must overdrive a JJ component"),
            }
        });
        // Cold-start factorization at φ = 0 (cos φ = 1), shared by every
        // instance of this netlist until its operating point moves.
        let g_zero: Vec<f64> = jjs.iter().map(|j| j.ic * 1.0f64 * k * dt).collect();
        let mut lu_zero = DenseLu::new(n);
        lu_zero.load(&a0);
        for (j, jj) in jjs.iter().enumerate() {
            lu_zero.add_diag(jj.ui, jj.s_static + g_zero[j]);
        }
        lu_zero.factor();
        CellTemplate {
            net: net.clone(),
            n,
            nn,
            nodes: net.nodes,
            a0,
            rhs_prog,
            jjs,
            n_l,
            ports_of_jj,
            inputs: net.inputs.clone(),
            decision,
            decision_delay: net.decision_delay,
            lu_zero,
            g_zero,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{c_cell, jtl_cell};

    /// Reference: one pass of the engine's original augmented Gaussian
    /// elimination, copied verbatim.
    fn reference_solve(a: &[f64], rhs: &[f64], n: usize) -> Vec<f64> {
        let mut x = rhs.to_vec();
        let mut m = a.to_vec();
        for col in 0..n {
            let mut piv = col;
            for r in col + 1..n {
                if m[r * n + col].abs() > m[piv * n + col].abs() {
                    piv = r;
                }
            }
            if m[piv * n + col].abs() < 1e-12 {
                continue;
            }
            if piv != col {
                for c2 in 0..n {
                    m.swap(col * n + c2, piv * n + c2);
                }
                x.swap(col, piv);
            }
            let d = m[col * n + col];
            for r in col + 1..n {
                let f = m[r * n + col] / d;
                if f == 0.0 {
                    continue;
                }
                for c2 in col..n {
                    m[r * n + c2] -= f * m[col * n + c2];
                }
                x[r] -= f * x[col];
            }
        }
        for col in (0..n).rev() {
            let mut s = x[col];
            for c2 in col + 1..n {
                s -= m[col * n + c2] * x[c2];
            }
            let d = m[col * n + col];
            x[col] = if d.abs() < 1e-12 { 0.0 } else { s / d };
        }
        x
    }

    #[test]
    fn lu_solve_is_bitwise_identical_to_reference_elimination() {
        // A representative MNA-shaped matrix (JTL template + corrections).
        let tmpl = CellTemplate::build(&jtl_cell(), 0.1);
        let n = tmpl.n;
        let mut a = tmpl.a0.clone();
        for (j, jj) in tmpl.jjs.iter().enumerate() {
            a[jj.ui * n + jj.ui] += jj.s_static + tmpl.g_zero[j] * 0.37;
        }
        let rhs: Vec<f64> = (0..n).map(|i| 0.1 * (i as f64 + 1.0) - 0.25).collect();
        let expect = reference_solve(&a, &rhs, n);
        let mut lu = DenseLu::new(n);
        lu.load(&a);
        lu.factor();
        let mut x = rhs.clone();
        lu.solve(&mut x);
        assert_eq!(x, expect, "LU path must reproduce the elimination bitwise");
    }

    #[test]
    fn template_shapes_match_netlists() {
        let jtl = CellTemplate::build(&jtl_cell(), 0.1);
        assert_eq!(jtl.nodes, 4);
        assert_eq!(jtl.n, 3 + 2); // 3 real nodes + 2 inductor branches
        assert_eq!(jtl.jjs.len(), 2);
        assert!(jtl.decision.is_none());
        // The output port watches the second junction.
        assert_eq!(jtl.ports_of_jj[0], Vec::<usize>::new());
        assert_eq!(jtl.ports_of_jj[1], vec![0]);

        let c = CellTemplate::build(&c_cell(), 0.1);
        assert_eq!(c.jjs.len(), 3);
        let (rule, node, ic) = c.decision.expect("decision cell");
        assert_eq!(rule, Decision::Coincidence);
        assert_eq!(node, 5);
        assert!(ic > 0.5); // the high-Ic storage junction
    }

    #[test]
    fn singular_columns_yield_zero_like_the_reference() {
        // 2x2 with an empty row/column: the reference forces x[1] = 0.
        let a = vec![2.0, 0.0, 0.0, 0.0];
        let rhs = vec![4.0, 1.0];
        let expect = reference_solve(&a, &rhs, 2);
        let mut lu = DenseLu::new(2);
        lu.load(&a);
        lu.factor();
        let mut x = rhs.clone();
        lu.solve(&mut x);
        assert_eq!(x, expect);
        assert_eq!(x, vec![2.0, 0.0]);
    }
}
