//! # rlse-analog — a schematic-level transient simulator for SCE cells
//!
//! The analog baseline of the PyLSE paper's Table 2 and Figure 16 is Cadence
//! Virtuoso with a proprietary process design kit; this crate provides the
//! open substitute: a small SPICE-class engine (modified nodal analysis,
//! backward-Euler integration, Newton iteration) with the RCSJ Josephson
//! junction model, plus netlists for the cells the paper's analog
//! comparison uses (JTL, splitter, merger, C element, inverted C element).
//!
//! The defining cost shape of schematic simulation is preserved: every
//! junction is an ODE integrated at a fixed sub-picosecond timestep whether
//! or not anything is happening, while the pulse level (rlse-core) pays
//! per-event cost only. See DESIGN.md §3 for what is genuinely analog here
//! and what is macromodelled.
//!
//! ```
//! use rlse_analog::prelude::*;
//!
//! let mut sim = AnalogSim::new();
//! let j = sim.add_cell(jtl_cell());
//! sim.stimulate(j, 0, &[20.0]);
//! sim.probe(j, 0, "OUT");
//! let events = sim.run(60.0);
//! assert_eq!(events.pulses["OUT"].len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cells;
pub mod engine;
mod solver;
pub mod synth;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::cells::{c_cell, c_inv_cell, jtl_cell, merger_cell, netlist_for, splitter_cell};
    pub use crate::engine::{
        AnalogEvents, AnalogSim, CellNetlist, Component, Decision, PulseShape, TemplateBank,
    };
    pub use crate::synth::from_circuit;
}
