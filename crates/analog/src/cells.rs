//! Schematic-level netlists for the SCE cells used by the paper's Table 2
//! designs (JTL, splitter, merger, C element, inverted C element).
//!
//! Transport stages are genuine RCSJ junction chains: a JTL propagates a
//! fluxon through two biased junctions; a splitter drives two branches from
//! one junction. Multi-input *decision* cells (C, InvC, M) use real junction
//! input stages and storage inductors, with the release of the output
//! junction supervised by a rule (see [`Decision`]) — a macromodel that
//! keeps the per-junction ODE cost of schematic simulation while making the
//! logical function exact (see DESIGN.md §3 for the substitution rationale).

use crate::engine::{CellNetlist, Component, Decision};

/// Standard junction critical current (mA).
pub const IC: f64 = 0.25;
/// Shunt resistance for βc ≈ 1 (Ω).
pub const RSHUNT: f64 = 2.3;
/// Junction capacitance (pF).
pub const CJ: f64 = 0.25;
/// Bias fraction of critical current.
pub const BIAS: f64 = 0.7;

fn jj(a: usize) -> Component {
    Component::Jj {
        a,
        ic: IC,
        r: RSHUNT,
        c: CJ,
    }
}

fn bias(node: usize) -> Component {
    Component::Bias {
        node,
        i: BIAS * IC,
    }
}

fn l(a: usize, b: usize, val: f64) -> Component {
    Component::Inductor { a, b, l: val }
}

/// A two-stage Josephson transmission line: `in → L → J1 → L → J2 (out)`.
pub fn jtl_cell() -> CellNetlist {
    let components = vec![
        l(1, 2, 2.0),
        jj(2),
        bias(2),
        l(2, 3, 2.0),
        jj(3),
        bias(3),
    ];
    CellNetlist {
        name: "JTL".into(),
        nodes: 4,
        components,
        inputs: vec![1],
        outputs: vec![4], // component index of the output JJ
        input_jjs: vec![],
        decision: None,
        decision_delay: 0.0,
    }
}

/// A splitter: one input junction driving two output branches.
pub fn splitter_cell() -> CellNetlist {
    let components = vec![
        l(1, 2, 2.0),
        jj(2), // input/confluence junction (component 1)
        bias(2),
        l(2, 3, 3.0),
        jj(3), // left output junction (component 4)
        bias(3),
        l(2, 4, 3.0),
        jj(4), // right output junction (component 7)
        bias(4),
    ];
    CellNetlist {
        name: "S".into(),
        nodes: 5,
        components,
        inputs: vec![1],
        outputs: vec![4, 7],
        input_jjs: vec![],
        decision: None,
        decision_delay: 0.0,
    }
}

/// Input stage + storage loop + supervised decision junction, shared by the
/// three decision cells. `decision_delay` is the condition-to-overdrive
/// latency, used to balance converging paths (the inverted C element is
/// given extra delay so a min-max pair's LOW and HIGH latencies match,
/// mirroring the JTL padding at the pulse level).
fn decision_cell(name: &str, rule: Decision, decision_delay: f64) -> CellNetlist {
    let components = vec![
        // Input a: injection node 1 → L → junction at node 2.
        l(1, 2, 2.0),
        jj(2), // component 1: input junction a
        bias(2),
        // Input b: injection node 3 → L → junction at node 4.
        l(3, 4, 2.0),
        jj(4), // component 4: input junction b
        bias(4),
        // Storage loops into the common node 5.
        l(2, 5, 8.0),
        l(4, 5, 8.0),
        // Decision junction: high critical current so it only fires when
        // overdriven by the supervisor.
        Component::Jj {
            a: 5,
            ic: 3.2 * IC,
            r: RSHUNT,
            c: CJ,
        }, // component 8: output junction
        Component::Bias { node: 5, i: 0.1 },
    ];
    CellNetlist {
        name: name.into(),
        nodes: 6,
        components,
        inputs: vec![1, 3],
        outputs: vec![8],
        input_jjs: vec![1, 4],
        decision: Some((rule, 8)),
        decision_delay,
    }
}

/// C element (coincidence): fires once both inputs have arrived.
pub fn c_cell() -> CellNetlist {
    decision_cell("C", Decision::Coincidence, 1.5)
}

/// Inverted C element: fires on the first input of each pair.
pub fn c_inv_cell() -> CellNetlist {
    decision_cell("C_INV", Decision::FirstArrival, 4.3)
}

/// Merger (confluence buffer): fires on every input pulse.
pub fn merger_cell() -> CellNetlist {
    decision_cell("M", Decision::Merge, 1.5)
}

/// Look up the analog netlist for a pulse-level cell by machine name.
/// Returns `None` for cells without an analog model.
pub fn netlist_for(machine_name: &str) -> Option<CellNetlist> {
    match machine_name {
        "JTL" => Some(jtl_cell()),
        "S" => Some(splitter_cell()),
        "C" => Some(c_cell()),
        "C_INV" => Some(c_inv_cell()),
        "M" => Some(merger_cell()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AnalogSim;

    fn single_pulse_times(ev: &crate::engine::AnalogEvents, label: &str) -> Vec<f64> {
        ev.pulses.get(label).cloned().unwrap_or_default()
    }

    #[test]
    fn jtl_propagates_one_pulse_per_injection() {
        let mut sim = AnalogSim::new();
        let j = sim.add_cell(jtl_cell());
        sim.stimulate(j, 0, &[20.0, 60.0]);
        sim.probe(j, 0, "OUT");
        let ev = sim.run(100.0);
        let out = single_pulse_times(&ev, "OUT");
        assert_eq!(out.len(), 2, "got {out:?}");
        assert!(out[0] > 20.0 && out[0] < 35.0, "{out:?}");
        assert!(out[1] > 60.0 && out[1] < 75.0, "{out:?}");
    }

    #[test]
    fn jtl_chain_propagates_between_cells() {
        let mut sim = AnalogSim::new();
        let j1 = sim.add_cell(jtl_cell());
        let j2 = sim.add_cell(jtl_cell());
        sim.connect((j1, 0), (j2, 0));
        sim.stimulate(j1, 0, &[20.0]);
        sim.probe(j2, 0, "OUT");
        let ev = sim.run(100.0);
        assert_eq!(single_pulse_times(&ev, "OUT").len(), 1);
    }

    #[test]
    fn splitter_duplicates_pulses() {
        let mut sim = AnalogSim::new();
        let s = sim.add_cell(splitter_cell());
        sim.stimulate(s, 0, &[20.0]);
        sim.probe(s, 0, "L");
        sim.probe(s, 1, "R");
        let ev = sim.run(60.0);
        assert_eq!(single_pulse_times(&ev, "L").len(), 1);
        assert_eq!(single_pulse_times(&ev, "R").len(), 1);
    }

    #[test]
    fn c_cell_waits_for_both_inputs() {
        let mut sim = AnalogSim::new();
        let c = sim.add_cell(c_cell());
        sim.stimulate(c, 0, &[20.0]);
        sim.stimulate(c, 1, &[50.0]);
        sim.probe(c, 0, "Q");
        let ev = sim.run(100.0);
        let q = single_pulse_times(&ev, "Q");
        assert_eq!(q.len(), 1, "{q:?}");
        assert!(q[0] > 50.0, "fires only after the second input: {q:?}");
    }

    #[test]
    fn c_cell_single_input_never_fires() {
        let mut sim = AnalogSim::new();
        let c = sim.add_cell(c_cell());
        sim.stimulate(c, 0, &[20.0]);
        sim.probe(c, 0, "Q");
        let ev = sim.run(100.0);
        assert!(single_pulse_times(&ev, "Q").is_empty());
    }

    #[test]
    fn c_inv_fires_on_first_and_absorbs_second() {
        let mut sim = AnalogSim::new();
        let c = sim.add_cell(c_inv_cell());
        sim.stimulate(c, 0, &[20.0]);
        sim.stimulate(c, 1, &[50.0]);
        sim.probe(c, 0, "Q");
        let ev = sim.run(100.0);
        let q = single_pulse_times(&ev, "Q");
        assert_eq!(q.len(), 1, "{q:?}");
        assert!(q[0] > 20.0 && q[0] < 40.0, "fires after the first: {q:?}");
    }

    #[test]
    fn merger_forwards_every_pulse() {
        let mut sim = AnalogSim::new();
        let m = sim.add_cell(merger_cell());
        sim.stimulate(m, 0, &[20.0, 80.0]);
        sim.stimulate(m, 1, &[50.0]);
        sim.probe(m, 0, "Q");
        let ev = sim.run(120.0);
        assert_eq!(single_pulse_times(&ev, "Q").len(), 3);
    }

    #[test]
    fn netlist_lookup() {
        assert!(netlist_for("JTL").is_some());
        assert!(netlist_for("AND").is_none());
        assert_eq!(jtl_cell().jj_count(), 2);
        assert_eq!(splitter_cell().jj_count(), 3);
        assert_eq!(c_cell().jj_count(), 3);
    }
}
