//! Activity gating: telemetry accounting and randomized agreement with the
//! naive reference engine.

use proptest::prelude::*;
use rlse_analog::prelude::*;
use rlse_core::telemetry::Telemetry;

/// Build a JTL chain of `len` cells driven by `times`, probing the far end.
fn jtl_chain(len: usize, times: &[f64]) -> AnalogSim {
    let mut sim = AnalogSim::new();
    let cells: Vec<_> = (0..len).map(|_| sim.add_cell(jtl_cell())).collect();
    for w in cells.windows(2) {
        sim.connect((w[0], 0), (w[1], 0));
    }
    sim.stimulate(cells[0], 0, times);
    sim.probe(*cells.last().unwrap(), 0, "OUT");
    sim
}

#[test]
fn telemetry_counters_account_for_every_cell_step() {
    let tel = Telemetry::new();
    let mut sim = jtl_chain(5, &[20.0, 60.0]).telemetry(&tel);
    let ev = sim.run(120.0);
    assert_eq!(ev.pulses["OUT"].len(), 2);

    let report = tel.report();
    let steps = report.counter("analog.steps");
    let cell_steps = report.counter("analog.cell_steps");
    let solves = report.counter("analog.solves");
    let skipped = report.counter("analog.solves_skipped");
    assert_eq!(steps, ev.steps as u64);
    assert_eq!(cell_steps, steps * 5, "5 cells × steps");
    // Every cell-step is either solved or skipped by gating — no third state.
    assert_eq!(solves + skipped, cell_steps);
    // The chain is idle for most of the 120 ps window, so gating must have
    // frozen a majority of cell-steps.
    assert!(
        skipped > cell_steps / 2,
        "gating skipped only {skipped} of {cell_steps} cell-steps"
    );
    // Newton takes at least one iteration per solve, and the chord cache
    // must be serving most iterations without a refactorization.
    let iters = report.counter("analog.newton_iters");
    let refacts = report.counter("analog.refactorizations");
    let avoided = report.counter("analog.refactor_avoided");
    assert!(iters >= solves);
    assert_eq!(refacts + avoided, iters);
    assert!(avoided > refacts, "LU cache barely reused: {refacts} refactorizations");
    // Each of the 2 input pulses traverses 4 inter-cell hops and is
    // recorded once at the probe.
    assert_eq!(report.counter("analog.pulses_routed"), 8);
    assert_eq!(report.counter("analog.pulses_recorded"), 2);
    assert!(report.gauge("analog.peak_active_cells") >= 1);
}

#[test]
fn disabled_telemetry_is_the_default_and_counts_nothing() {
    let mut sim = jtl_chain(2, &[20.0]);
    let ev = sim.run(60.0);
    assert_eq!(ev.pulses["OUT"].len(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Gating may never drop, duplicate, or reorder pulses: an arbitrary
    /// JTL chain driven by arbitrary (deduplicated) pulse times produces
    /// exactly the reference engine's output.
    #[test]
    fn random_jtl_chains_agree_with_reference(
        len in 1usize..6,
        raw_times in proptest::collection::vec(15u32..80, 1..5),
    ) {
        // Sort, dedup, and space the integer picks out to ≥ 15 ps so pulses
        // stay distinct SFQ events (the reference engine has the same
        // requirement).
        let mut raw_times = raw_times;
        raw_times.sort_unstable();
        raw_times.dedup();
        let times: Vec<f64> = raw_times
            .iter()
            .enumerate()
            .map(|(i, &t)| t as f64 + 15.0 * i as f64)
            .collect();
        let mut sim = jtl_chain(len, &times);
        let golden = sim.run_reference(200.0);
        let gated = sim.run(200.0);
        prop_assert_eq!(&gated.pulses, &golden.pulses);
        prop_assert_eq!(gated.pulses["OUT"].len(), times.len());
    }
}
