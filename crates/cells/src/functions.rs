//! Wire-level helper functions (paper §4.1, Full-Circuit Design level).
//!
//! Each helper instantiates one cell in the circuit workspace and returns
//! its output wire(s), so that basic cells resemble ordinary function calls:
//!
//! ```
//! use rlse_core::prelude::*;
//! use rlse_cells::{s, c, c_inv, jtl_delay};
//!
//! # fn main() -> Result<(), rlse_core::Error> {
//! // The paper's min-max pair (Fig. 11b).
//! let mut circ = Circuit::new();
//! let a = circ.inp_at(&[115.0], "A");
//! let b = circ.inp_at(&[64.0], "B");
//! let (a0, a1) = s(&mut circ, a)?;
//! let (b0, b1) = s(&mut circ, b)?;
//! let low = c_inv(&mut circ, a0, b0)?;
//! let high = c(&mut circ, a1, b1)?;
//! let high = jtl_delay(&mut circ, high, 2.0)?;
//! circ.inspect(low, "LOW");
//! circ.inspect(high, "HIGH");
//! let ev = Simulation::new(circ).run()?;
//! assert_eq!(ev.times("LOW"), &[89.0]);   // 64 + 11 + 14
//! assert_eq!(ev.times("HIGH"), &[140.0]); // 115 + 11 + 12 + 2
//! # Ok(())
//! # }
//! ```

use crate::defs;
use rlse_core::circuit::{Circuit, NodeOverrides, Wire};
use rlse_core::error::Error;

/// Splitter: duplicate `w` onto two wires.
///
/// # Errors
///
/// Fails if `w` already has a reader (fanout violation).
pub fn s(circ: &mut Circuit, w: Wire) -> Result<(Wire, Wire), Error> {
    let outs = circ.add_machine(&defs::s_elem(), &[w])?;
    Ok((outs[0], outs[1]))
}

/// Split a wire `n` ways, creating `n-1` splitter elements arranged as a
/// binary tree (Table 1, `split`). The returned wires are in left-to-right
/// tree order; for `n == 1` the original wire is returned unchanged.
///
/// # Errors
///
/// Fails on a fanout violation.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn split_n(circ: &mut Circuit, w: Wire, n: usize) -> Result<Vec<Wire>, Error> {
    assert!(n > 0, "cannot split a wire 0 ways");
    // Maintain a work queue of wires; split the widest-needed leaf until we
    // have n leaves, keeping the tree balanced.
    let mut need = vec![(w, n)];
    let mut leaves = Vec::new();
    while let Some((wire, k)) = need.pop() {
        if k == 1 {
            leaves.push(wire);
            continue;
        }
        let (l, r) = s(circ, wire)?;
        let lk = k / 2 + k % 2;
        need.push((r, k / 2));
        need.push((l, lk));
    }
    Ok(leaves)
}

/// C element (coincidence): fires once both `a` and `b` have arrived.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn c(circ: &mut Circuit, a: Wire, b: Wire) -> Result<Wire, Error> {
    Ok(circ.add_machine(&defs::c_elem(), &[a, b])?[0])
}

/// Inverted C element: fires on the first of `a`, `b`; absorbs the other.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn c_inv(circ: &mut Circuit, a: Wire, b: Wire) -> Result<Wire, Error> {
    Ok(circ.add_machine(&defs::c_inv_elem(), &[a, b])?[0])
}

/// Merger (confluence buffer): forwards every pulse on `a` or `b`.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn m(circ: &mut Circuit, a: Wire, b: Wire) -> Result<Wire, Error> {
    Ok(circ.add_machine(&defs::m_elem(), &[a, b])?[0])
}

/// Josephson transmission line with the default 5.7 ps delay.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn jtl(circ: &mut Circuit, a: Wire) -> Result<Wire, Error> {
    Ok(circ.add_machine(&defs::jtl_elem(), &[a])?[0])
}

/// Josephson transmission line with an explicit firing delay (the paper's
/// `jtl(high, firing_delay=2.0)`).
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn jtl_delay(circ: &mut Circuit, a: Wire, firing_delay: f64) -> Result<Wire, Error> {
    Ok(circ.add_machine_with(
        &defs::jtl_elem(),
        &[a],
        NodeOverrides {
            firing_delay: Some(firing_delay),
            ..Default::default()
        },
    )?[0])
}

/// A chain of `n` JTLs (path-balancing helper).
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn jtl_chain(circ: &mut Circuit, mut a: Wire, n: usize) -> Result<Wire, Error> {
    for _ in 0..n {
        a = jtl(circ, a)?;
    }
    Ok(a)
}

macro_rules! clocked2 {
    ($(#[$doc:meta])* $fn_name:ident, $def:ident) => {
        $(#[$doc])*
        ///
        /// # Errors
        ///
        /// Fails on a fanout violation.
        pub fn $fn_name(circ: &mut Circuit, a: Wire, b: Wire, clk: Wire) -> Result<Wire, Error> {
            Ok(circ.add_machine(&defs::$def(), &[a, b, clk])?[0])
        }
    };
}

clocked2!(
    /// Synchronous AND: fires after a clock period in which both inputs pulsed.
    and_s, and_elem
);
clocked2!(
    /// Synchronous OR: fires after a clock period in which any input pulsed.
    or_s, or_elem
);
clocked2!(
    /// Synchronous NAND: fires unless both inputs pulsed this period.
    nand_s, nand_elem
);
clocked2!(
    /// Synchronous NOR: fires only if no input pulsed this period.
    nor_s, nor_elem
);
clocked2!(
    /// Synchronous XOR: fires if exactly one input pulsed this period.
    xor_s, xor_elem
);
clocked2!(
    /// Synchronous XNOR: fires if both or neither input pulsed this period.
    xnor_s, xnor_elem
);

/// Synchronous inverter: fires on clk only if `a` did not pulse this period.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn inv_s(circ: &mut Circuit, a: Wire, clk: Wire) -> Result<Wire, Error> {
    Ok(circ.add_machine(&defs::inv_elem(), &[a, clk])?[0])
}

/// Destructive readout: stores a pulse on `a`, releases it on `clk`.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn dro(circ: &mut Circuit, a: Wire, clk: Wire) -> Result<Wire, Error> {
    Ok(circ.add_machine(&defs::dro_elem(), &[a, clk])?[0])
}

/// Set/reset DRO: `set` stores, `rst` clears, `clk` reads destructively.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn dro_sr(circ: &mut Circuit, set: Wire, rst: Wire, clk: Wire) -> Result<Wire, Error> {
    Ok(circ.add_machine(&defs::dro_sr_elem(), &[set, rst, clk])?[0])
}

/// Complementary-output DRO: returns `(q, qn)`.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn dro_c(circ: &mut Circuit, a: Wire, clk: Wire) -> Result<(Wire, Wire), Error> {
    let outs = circ.add_machine(&defs::dro_c_elem(), &[a, clk])?;
    Ok((outs[0], outs[1]))
}

/// 2x2 join on dual-rail pairs `(a_t, a_f)` and `(b_t, b_f)`; returns
/// `(tt, tf, ft, ff)`.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn join2x2(
    circ: &mut Circuit,
    a_t: Wire,
    a_f: Wire,
    b_t: Wire,
    b_f: Wire,
) -> Result<(Wire, Wire, Wire, Wire), Error> {
    let outs = circ.add_machine(&defs::join2x2_elem(), &[a_t, a_f, b_t, b_f])?;
    Ok((outs[0], outs[1], outs[2], outs[3]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlse_core::prelude::*;

    /// Run one clocked gate over four periods covering the full 2-input
    /// truth table and return the pattern of output periods that fired.
    /// Periods: 1: none, 2: a only, 3: b only, 4: both.
    fn truth_table(
        gate: fn(&mut Circuit, Wire, Wire, Wire) -> Result<Wire, Error>,
    ) -> [bool; 4] {
        let mut circ = Circuit::new();
        // Period k spans (100k-100, 100k]. Pulses at mid-period.
        let a = circ.inp_at(&[150.0, 350.0], "A");
        let b = circ.inp_at(&[250.0, 360.0], "B");
        let clk = circ.inp(100.0, 100.0, 4, "CLK").unwrap();
        let q = gate(&mut circ, a, b, clk).unwrap();
        circ.inspect(q, "Q");
        let ev = Simulation::new(circ).run().unwrap();
        let mut fired = [false; 4];
        for &t in ev.times("Q") {
            // A pulse fired by the clock at 100*(k+1) reports period k.
            let period = ((t / 100.0).floor() as usize) - 1;
            assert!(period < 4, "unexpected output at {t}");
            assert!(!fired[period], "double fire in period {period}");
            fired[period] = true;
        }
        fired
    }

    #[test]
    fn and_truth_table() {
        assert_eq!(truth_table(and_s), [false, false, false, true]);
    }
    #[test]
    fn or_truth_table() {
        assert_eq!(truth_table(or_s), [false, true, true, true]);
    }
    #[test]
    fn nand_truth_table() {
        assert_eq!(truth_table(nand_s), [true, true, true, false]);
    }
    #[test]
    fn nor_truth_table() {
        assert_eq!(truth_table(nor_s), [true, false, false, false]);
    }
    #[test]
    fn xor_truth_table() {
        assert_eq!(truth_table(xor_s), [false, true, true, false]);
    }
    #[test]
    fn xnor_truth_table() {
        assert_eq!(truth_table(xnor_s), [true, false, false, true]);
    }

    #[test]
    fn figure12_and_simulation() {
        // The paper's Figure 12: Q fires at 209.2, 259.2, 309.2.
        let mut circ = Circuit::new();
        let a = circ.inp_at(&[125.0, 175.0, 225.0, 275.0], "A");
        let b = circ.inp_at(&[75.0, 185.0, 225.0, 265.0], "B");
        let clk = circ.inp(50.0, 50.0, 6, "CLK").unwrap();
        let q = and_s(&mut circ, a, b, clk).unwrap();
        circ.inspect(q, "Q");
        let ev = Simulation::new(circ).run().unwrap();
        assert_eq!(ev.times("Q"), &[209.2, 259.2, 309.2]);
    }

    #[test]
    fn figure13_setup_violation() {
        // Moving B's first pulse to 99 violates the 2.8 ps setup before the
        // clock at 100 (paper Fig. 13).
        let mut circ = Circuit::new();
        let a = circ.inp_at(&[125.0, 175.0, 225.0, 275.0], "A");
        let b = circ.inp_at(&[99.0, 185.0, 225.0, 265.0], "B");
        let clk = circ.inp(50.0, 50.0, 6, "CLK").unwrap();
        let q = and_s(&mut circ, a, b, clk).unwrap();
        circ.inspect(q, "Q");
        let err = Simulation::new(circ).run().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("Prior input violation on FSM 'AND'"), "{msg}");
        assert!(msg.contains("It was last seen at 99"), "{msg}");
    }

    #[test]
    fn inverter_fires_only_on_empty_periods() {
        let mut circ = Circuit::new();
        let a = circ.inp_at(&[150.0], "A");
        let clk = circ.inp(100.0, 100.0, 3, "CLK").unwrap();
        let q = inv_s(&mut circ, a, clk).unwrap();
        circ.inspect(q, "Q");
        let ev = Simulation::new(circ).run().unwrap();
        // Fires on clk at 100 (no a yet) and 300 (a consumed at 200).
        assert_eq!(ev.times("Q"), &[106.0, 306.0]);
    }

    #[test]
    fn dro_stores_and_releases() {
        let mut circ = Circuit::new();
        let a = circ.inp_at(&[150.0], "A");
        let clk = circ.inp(100.0, 100.0, 3, "CLK").unwrap();
        let q = dro(&mut circ, a, clk).unwrap();
        circ.inspect(q, "Q");
        let ev = Simulation::new(circ).run().unwrap();
        assert_eq!(ev.times("Q"), &[205.1]);
    }

    #[test]
    fn dro_sr_reset_clears_stored_pulse() {
        let mut circ = Circuit::new();
        let set = circ.inp_at(&[150.0, 350.0], "SET");
        let rst = circ.inp_at(&[170.0], "RST");
        let clk = circ.inp(100.0, 100.0, 5, "CLK").unwrap();
        let q = dro_sr(&mut circ, set, rst, clk).unwrap();
        circ.inspect(q, "Q");
        let ev = Simulation::new(circ).run().unwrap();
        // set@150 cleared by rst@170, so clk@200 is silent; set@350 read at 400.
        assert_eq!(ev.times("Q"), &[405.1]);
    }

    #[test]
    fn dro_c_fires_complement() {
        let mut circ = Circuit::new();
        let a = circ.inp_at(&[150.0], "A");
        let clk = circ.inp(100.0, 100.0, 2, "CLK").unwrap();
        let (q, qn) = dro_c(&mut circ, a, clk).unwrap();
        circ.inspect(q, "Q");
        circ.inspect(qn, "QN");
        let ev = Simulation::new(circ).run().unwrap();
        assert_eq!(ev.times("QN"), &[105.1]); // empty period
        assert_eq!(ev.times("Q"), &[205.1]); // stored period
    }

    #[test]
    fn join_fires_the_right_rail() {
        let mut circ = Circuit::new();
        let a_t = circ.inp_at(&[100.0], "A_T");
        let a_f = circ.inp_at(&[200.0], "A_F");
        let b_t = circ.inp_at(&[150.0, 220.0], "B_T");
        let b_f = circ.inp_at(&[], "B_F");
        let (tt, tf, ft, ff) = join2x2(&mut circ, a_t, a_f, b_t, b_f).unwrap();
        for (w, n) in [(tt, "TT"), (tf, "TF"), (ft, "FT"), (ff, "FF")] {
            circ.inspect(w, n);
        }
        let ev = Simulation::new(circ).run().unwrap();
        assert_eq!(ev.times("TT"), &[156.0]); // a_t@100 + b_t@150
        assert_eq!(ev.times("FT"), &[226.0]); // a_f@200 + b_t@220
        assert!(ev.times("TF").is_empty());
        assert!(ev.times("FF").is_empty());
    }

    #[test]
    fn split_n_builds_a_binary_tree() {
        let mut circ = Circuit::new();
        let a = circ.inp_at(&[100.0], "A");
        let outs = split_n(&mut circ, a, 5).unwrap();
        assert_eq!(outs.len(), 5);
        // 4 splitters needed for a 5-way split.
        assert_eq!(circ.stats().cells, 4);
        for (i, w) in outs.iter().enumerate() {
            circ.inspect(*w, &format!("O{i}"));
        }
        let ev = Simulation::new(circ).run().unwrap();
        for i in 0..5 {
            let t = ev.times(&format!("O{i}"));
            assert_eq!(t.len(), 1);
            // Depth 2 or 3 of splitters at 11 ps each.
            assert!(t[0] == 122.0 || t[0] == 133.0, "O{i} at {}", t[0]);
        }
    }

    #[test]
    fn merger_and_jtl_chain() {
        let mut circ = Circuit::new();
        let a = circ.inp_at(&[100.0], "A");
        let b = circ.inp_at(&[200.0], "B");
        let j = jtl_chain(&mut circ, a, 3).unwrap();
        let q = m(&mut circ, j, b).unwrap();
        circ.inspect(q, "Q");
        let ev = Simulation::new(circ).run().unwrap();
        assert!(ev.matches("Q", &[100.0 + 3.0 * 5.7 + 6.3, 206.3], 1e-9));
    }

    #[test]
    fn c_requires_both_inputs() {
        let mut circ = Circuit::new();
        let a = circ.inp_at(&[100.0, 300.0], "A");
        let b = circ.inp_at(&[150.0], "B");
        let q = c(&mut circ, a, b).unwrap();
        circ.inspect(q, "Q");
        let ev = Simulation::new(circ).run().unwrap();
        // Fires at 150+12; the lone a@300 stays pending.
        assert_eq!(ev.times("Q"), &[162.0]);
    }

    #[test]
    fn c_inv_fires_on_first_only() {
        let mut circ = Circuit::new();
        let a = circ.inp_at(&[100.0], "A");
        let b = circ.inp_at(&[150.0], "B");
        let q = c_inv(&mut circ, a, b).unwrap();
        circ.inspect(q, "Q");
        let ev = Simulation::new(circ).run().unwrap();
        assert_eq!(ev.times("Q"), &[114.0]); // 100 + 14; b absorbed
    }
}
