//! Additional cells beyond the paper's 16-cell core library: standard RSFQ
//! storage and toggle elements, and the race-logic primitives of the
//! temporal conventions the paper cites (\[51, 52\]).

use crate::defs::{HOLD_TIME, SETUP_TIME};
use rlse_core::circuit::{Circuit, Wire};
use rlse_core::error::Error;
use rlse_core::machine::{EdgeDef, Machine};
use std::sync::Arc;
use std::sync::OnceLock;

const PC: &[(&str, f64)] = &[("*", SETUP_TIME)];

macro_rules! cached {
    ($name:ident, $build:expr) => {
        /// Return the (cached) machine definition for this cell.
        pub fn $name() -> Arc<Machine> {
            static CELL: OnceLock<Arc<Machine>> = OnceLock::new();
            Arc::clone(CELL.get_or_init(|| $build))
        }
    };
}

cached!(ndro_elem, {
    // Non-destructive readout: `set` stores a 1, `rst` clears it, and `clk`
    // reads the stored value *without* clearing it.
    Machine::new(
        "NDRO",
        &["set", "rst", "clk"],
        &["q"],
        6.1,
        11,
        &[
            EdgeDef { src: "idle", trigger: "set", dst: "stored", ..Default::default() },
            EdgeDef { src: "idle", trigger: "rst", dst: "idle", ..Default::default() },
            EdgeDef { src: "idle", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, past_constraints: PC, ..Default::default() },
            EdgeDef { src: "stored", trigger: "set", dst: "stored", ..Default::default() },
            EdgeDef { src: "stored", trigger: "rst", dst: "idle", ..Default::default() },
            EdgeDef { src: "stored", trigger: "clk", dst: "stored", transition_time: HOLD_TIME, firing: "q", past_constraints: PC, ..Default::default() },
        ],
    )
    .expect("NDRO definition is well-formed")
    .with_setup_hold(SETUP_TIME, HOLD_TIME)
});

cached!(tff_elem, {
    // Toggle (T1) flip-flop: every second input pulse is forwarded.
    Machine::new(
        "TFF",
        &["a"],
        &["q"],
        6.5,
        5,
        &[
            EdgeDef { src: "idle", trigger: "a", dst: "half", transition_time: 2.0, ..Default::default() },
            EdgeDef { src: "half", trigger: "a", dst: "idle", transition_time: 2.0, firing: "q", ..Default::default() },
        ],
    )
    .expect("TFF definition is well-formed")
});

cached!(inhibit_elem, {
    // Race-logic INHIBIT: a pulse on `a` propagates to `q` unless a pulse
    // on `b` arrived first (then `a` is swallowed). A `b` after `a` has no
    // effect on that evaluation; state persists until the next wave.
    Machine::new(
        "INHIBIT",
        &["a", "b"],
        &["q"],
        7.0,
        6,
        &[
            EdgeDef { src: "idle", trigger: "a", dst: "idle", transition_time: 2.0, firing: "q", ..Default::default() },
            EdgeDef { src: "idle", trigger: "b", dst: "blocked", transition_time: 1.0, ..Default::default() },
            EdgeDef { src: "blocked", trigger: "a", dst: "blocked", ..Default::default() },
            EdgeDef { src: "blocked", trigger: "b", dst: "blocked", ..Default::default() },
        ],
    )
    .expect("INHIBIT definition is well-formed")
});

/// Non-destructive readout: returns `q`.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn ndro(circ: &mut Circuit, set: Wire, rst: Wire, clk: Wire) -> Result<Wire, Error> {
    Ok(circ.add_machine(&ndro_elem(), &[set, rst, clk])?[0])
}

/// Toggle flip-flop: forwards every second pulse.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn tff(circ: &mut Circuit, a: Wire) -> Result<Wire, Error> {
    Ok(circ.add_machine(&tff_elem(), &[a])?[0])
}

/// Race-logic inhibit: `a` passes unless `b` arrived first.
///
/// # Errors
///
/// Fails on a fanout violation.
pub fn inhibit(circ: &mut Circuit, a: Wire, b: Wire) -> Result<Wire, Error> {
    Ok(circ.add_machine(&inhibit_elem(), &[a, b])?[0])
}

/// Race-logic / temporal-convention aliases (paper refs \[51, 52\]): in
/// temporal encodings a value is *when* a pulse arrives, so MIN and MAX of
/// two arrival times are computed by the first-arrival (inverted C) and
/// last-arrival (C) elements.
pub mod temporal {
    use super::inhibit as inhibit_cell;
    use rlse_core::circuit::{Circuit, Wire};
    use rlse_core::error::Error;

    /// Temporal MIN: fires at the earlier of the two arrivals
    /// (first-arrival element).
    ///
    /// # Errors
    ///
    /// Fails on a fanout violation.
    pub fn first_arrival(circ: &mut Circuit, a: Wire, b: Wire) -> Result<Wire, Error> {
        crate::functions::c_inv(circ, a, b)
    }

    /// Temporal MAX: fires at the later of the two arrivals (coincidence
    /// element).
    ///
    /// # Errors
    ///
    /// Fails on a fanout violation.
    pub fn last_arrival(circ: &mut Circuit, a: Wire, b: Wire) -> Result<Wire, Error> {
        crate::functions::c(circ, a, b)
    }

    /// Temporal INHIBIT: `a` unless `b` came first.
    ///
    /// # Errors
    ///
    /// Fails on a fanout violation.
    pub fn inhibit(circ: &mut Circuit, a: Wire, b: Wire) -> Result<Wire, Error> {
        inhibit_cell(circ, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlse_core::prelude::*;

    #[test]
    fn ndro_reads_without_clearing() {
        let mut c = Circuit::new();
        let set = c.inp_at(&[20.0], "SET");
        let rst = c.inp_at(&[250.0], "RST");
        let clk = c.inp(100.0, 100.0, 4, "CLK").unwrap();
        let q = ndro(&mut c, set, rst, clk).unwrap();
        c.inspect(q, "Q");
        let ev = Simulation::new(c).run().unwrap();
        // Reads at 100 and 200 both see the stored 1 (non-destructive);
        // rst at 250 clears it so 300 and 400 are silent.
        assert_eq!(ev.times("Q"), &[106.1, 206.1]);
    }

    #[test]
    fn tff_halves_the_pulse_train() {
        let mut c = Circuit::new();
        let a = c.inp(20.0, 20.0, 6, "A").unwrap();
        let q = tff(&mut c, a).unwrap();
        c.inspect(q, "Q");
        let ev = Simulation::new(c).run().unwrap();
        assert_eq!(ev.times("Q").len(), 3);
        // Fires on the 2nd, 4th, 6th pulses.
        assert_eq!(ev.times("Q"), &[46.5, 86.5, 126.5]);
    }

    #[test]
    fn inhibit_passes_a_when_first() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[20.0], "A");
        let b = c.inp_at(&[50.0], "B");
        let q = inhibit(&mut c, a, b).unwrap();
        c.inspect(q, "Q");
        let ev = Simulation::new(c).run().unwrap();
        assert_eq!(ev.times("Q"), &[27.0]);
    }

    #[test]
    fn inhibit_blocks_a_when_b_first() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[50.0], "A");
        let b = c.inp_at(&[20.0], "B");
        let q = inhibit(&mut c, a, b).unwrap();
        c.inspect(q, "Q");
        let ev = Simulation::new(c).run().unwrap();
        assert!(ev.times("Q").is_empty());
    }

    #[test]
    fn temporal_min_max_compute_order_statistics() {
        let mut c = Circuit::new();
        let a = c.inp_at(&[30.0], "A");
        let b = c.inp_at(&[70.0], "B");
        let (a0, a1) = crate::functions::s(&mut c, a).unwrap();
        let (b0, b1) = crate::functions::s(&mut c, b).unwrap();
        let min = temporal::first_arrival(&mut c, a0, b0).unwrap();
        let max = temporal::last_arrival(&mut c, a1, b1).unwrap();
        c.inspect(min, "MIN");
        c.inspect(max, "MAX");
        let ev = Simulation::new(c).run().unwrap();
        // MIN = 30 + 11 (splitter) + 14 (InvC); MAX = 70 + 11 + 12 (C).
        assert_eq!(ev.times("MIN"), &[55.0]);
        assert_eq!(ev.times("MAX"), &[93.0]);
    }

    #[test]
    fn extra_cells_are_well_formed() {
        for m in [ndro_elem(), tff_elem(), inhibit_elem()] {
            assert!(rlse_core::validate::analyze_machine(&m).is_empty(), "{}", m.name());
        }
    }
}
