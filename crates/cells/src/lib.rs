//! # rlse-cells — the RLSE standard cell library
//!
//! The 16 basic SCE cells of the PyLSE paper's Table 3, defined as PyLSE
//! Machines over [`rlse_core`], plus the wire-level helper functions that
//! make cells compose like ordinary function calls (paper §4.1).
//!
//! Asynchronous transport and decision cells:
//!
//! * [`c`] / [`defs::c_elem`] — C element (coincidence; fires on the second
//!   arrival)
//! * [`c_inv`] / [`defs::c_inv_elem`] — inverted C element (first arrival)
//! * [`m`] / [`defs::m_elem`] — merger (confluence buffer)
//! * [`s`] / [`defs::s_elem`] — splitter (the only legal way to fan out)
//! * [`jtl`] / [`defs::jtl_elem`] — Josephson transmission line
//! * [`join2x2`] / [`defs::join2x2_elem`] — dual-rail 2x2 join
//!
//! Clocked (synchronous RSFQ) cells, all with the paper's 2.8 ps setup and
//! 3.0 ps hold constraints:
//!
//! * [`and_s`], [`or_s`], [`nand_s`], [`nor_s`], [`xor_s`], [`xnor_s`],
//!   [`inv_s`] — clocked logic gates
//! * [`dro`], [`dro_sr`], [`dro_c`] — destructive-readout storage cells
//!
//! ## Example
//!
//! ```
//! use rlse_core::prelude::*;
//! use rlse_cells::prelude::*;
//!
//! # fn main() -> Result<(), rlse_core::Error> {
//! let mut circ = Circuit::new();
//! let a = circ.inp_at(&[125.0, 175.0, 225.0, 275.0], "A");
//! let b = circ.inp_at(&[75.0, 185.0, 225.0, 265.0], "B");
//! let clk = circ.inp(50.0, 50.0, 6, "CLK")?;
//! let q = and_s(&mut circ, a, b, clk)?;
//! circ.inspect(q, "Q");
//! let events = Simulation::new(circ).run()?;
//! assert_eq!(events.times("Q"), &[209.2, 259.2, 309.2]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod defs;
pub mod extra;
mod functions;

pub use extra::{inhibit, ndro, temporal, tff};
pub use functions::{
    and_s, c, c_inv, dro, dro_c, dro_sr, inv_s, join2x2, jtl, jtl_chain, jtl_delay, m, nand_s,
    nor_s, or_s, s, split_n, xnor_s, xor_s,
};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::defs::{HOLD_TIME, SETUP_TIME};
    pub use crate::extra::{inhibit, ndro, tff};
    pub use crate::functions::*;
}
