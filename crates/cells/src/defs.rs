//! Definitions of the 16 basic SCE cells of the paper's Table 3.
//!
//! Timing parameters for the Synchronous And Element come straight from the
//! paper (setup 2.8 ps, hold 3.0 ps, firing delay 9.2 ps, 11 JJs), as do the
//! delays used by the min-max pair (splitter 11 ps, C element 12 ps,
//! inverted C element 14 ps). The remaining values are plausible RSFQ
//! numbers in the same range; every cell accepts per-instance overrides via
//! [`rlse_core::circuit::NodeOverrides`].
//!
//! Clocked (synchronous RSFQ) cells model their hold time as the transition
//! time of each `clk` edge and their setup time as a `*` past constraint on
//! each `clk` edge, exactly as the paper's Figure 8 does for the AND cell.

use rlse_core::machine::{EdgeDef, Machine};
use std::sync::Arc;
use std::sync::OnceLock;

/// Nominal setup time of clocked cells, from the paper's AND cell (ps).
pub const SETUP_TIME: f64 = 2.8;
/// Nominal hold time of clocked cells, from the paper's AND cell (ps).
pub const HOLD_TIME: f64 = 3.0;

/// Past-constraint list shared by every clocked cell's `clk` edges.
const PC: &[(&str, f64)] = &[("*", SETUP_TIME)];

macro_rules! cached {
    ($name:ident, $build:expr) => {
        /// Return the (cached) machine definition for this cell.
        pub fn $name() -> Arc<Machine> {
            static CELL: OnceLock<Arc<Machine>> = OnceLock::new();
            Arc::clone(CELL.get_or_init(|| $build))
        }
    };
}

cached!(c_elem, {
    // C element (coincidence): fires q once both inputs have arrived.
    // Firing delay 12 ps (paper §4.1). Table 3: 6 transitions, 3 states.
    Machine::new(
        "C",
        &["a", "b"],
        &["q"],
        12.0,
        7,
        &[
            EdgeDef { src: "idle", trigger: "a", dst: "a_arr", transition_time: 1.0, ..Default::default() },
            EdgeDef { src: "idle", trigger: "b", dst: "b_arr", transition_time: 1.0, ..Default::default() },
            EdgeDef { src: "a_arr", trigger: "b", dst: "idle", transition_time: 2.0, firing: "q", ..Default::default() },
            EdgeDef { src: "a_arr", trigger: "a", dst: "a_arr", ..Default::default() },
            EdgeDef { src: "b_arr", trigger: "a", dst: "idle", transition_time: 2.0, firing: "q", ..Default::default() },
            EdgeDef { src: "b_arr", trigger: "b", dst: "b_arr", ..Default::default() },
        ],
    )
    .expect("C element definition is well-formed")
});

cached!(c_inv_elem, {
    // Inverted C element (first-arrival): fires q on the first input to
    // arrive; the matching later input is absorbed without firing.
    // Firing delay 14 ps (paper §4.1). Table 3: 6 transitions, 3 states.
    Machine::new(
        "C_INV",
        &["a", "b"],
        &["q"],
        14.0,
        5,
        &[
            EdgeDef { src: "idle", trigger: "a", dst: "a_arr", transition_time: 2.0, firing: "q", ..Default::default() },
            EdgeDef { src: "idle", trigger: "b", dst: "b_arr", transition_time: 2.0, firing: "q", ..Default::default() },
            EdgeDef { src: "a_arr", trigger: "b", dst: "idle", transition_time: 1.0, ..Default::default() },
            EdgeDef { src: "a_arr", trigger: "a", dst: "a_arr", ..Default::default() },
            EdgeDef { src: "b_arr", trigger: "a", dst: "idle", transition_time: 1.0, ..Default::default() },
            EdgeDef { src: "b_arr", trigger: "b", dst: "b_arr", ..Default::default() },
        ],
    )
    .expect("inverted C element definition is well-formed")
});

cached!(m_elem, {
    // Merger (confluence buffer): every input pulse is forwarded to q.
    // Table 3: 2 transitions, 1 state.
    Machine::new(
        "M",
        &["a", "b"],
        &["q"],
        6.3,
        5,
        &[
            EdgeDef { src: "idle", trigger: "a", dst: "idle", firing: "q", ..Default::default() },
            EdgeDef { src: "idle", trigger: "b", dst: "idle", firing: "q", ..Default::default() },
        ],
    )
    .expect("merger definition is well-formed")
});

cached!(s_elem, {
    // Splitter: duplicates each input pulse onto l and r.
    // Firing delay 11 ps (paper §4.1). Table 3: 1 transition, 1 state.
    Machine::new(
        "S",
        &["a"],
        &["l", "r"],
        11.0,
        3,
        &[EdgeDef { src: "idle", trigger: "a", dst: "idle", firing: "l,r", ..Default::default() }],
    )
    .expect("splitter definition is well-formed")
});

cached!(jtl_elem, {
    // Josephson transmission line: forwards pulses, adding delay.
    // Table 3: 1 transition, 1 state.
    Machine::new(
        "JTL",
        &["a"],
        &["q"],
        5.7,
        2,
        &[EdgeDef { src: "idle", trigger: "a", dst: "idle", firing: "q", ..Default::default() }],
    )
    .expect("JTL definition is well-formed")
});

cached!(and_elem, {
    // Synchronous And Element, verbatim from the paper's Figure 8.
    // Table 3: size 11, 12 transitions, 4 states.
    Machine::new(
        "AND",
        &["a", "b", "clk"],
        &["q"],
        9.2,
        11,
        &[
            EdgeDef { src: "idle", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, past_constraints: PC, ..Default::default() },
            EdgeDef { src: "idle", trigger: "a", dst: "a_arr", ..Default::default() },
            EdgeDef { src: "idle", trigger: "b", dst: "b_arr", ..Default::default() },
            EdgeDef { src: "a_arr", trigger: "b", dst: "ab_arr", ..Default::default() },
            EdgeDef { src: "a_arr", trigger: "a", dst: "a_arr", ..Default::default() },
            EdgeDef { src: "a_arr", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, past_constraints: PC, ..Default::default() },
            EdgeDef { src: "b_arr", trigger: "a", dst: "ab_arr", ..Default::default() },
            EdgeDef { src: "b_arr", trigger: "b", dst: "b_arr", ..Default::default() },
            EdgeDef { src: "b_arr", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, past_constraints: PC, ..Default::default() },
            EdgeDef { src: "ab_arr", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, firing: "q", past_constraints: PC, ..Default::default() },
            EdgeDef { src: "ab_arr", trigger: "a,b", dst: "ab_arr", ..Default::default() },
        ],
    )
    .expect("AND definition is well-formed")
    .with_setup_hold(SETUP_TIME, HOLD_TIME)
});

cached!(or_elem, {
    // Synchronous Or Element. Table 3: size 4, 6 transitions, 2 states.
    Machine::new(
        "OR",
        &["a", "b", "clk"],
        &["q"],
        8.2,
        10,
        &[
            EdgeDef { src: "idle", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, past_constraints: PC, ..Default::default() },
            EdgeDef { src: "idle", trigger: "a,b", dst: "arr", ..Default::default() },
            EdgeDef { src: "arr", trigger: "a,b", dst: "arr", ..Default::default() },
            EdgeDef { src: "arr", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, firing: "q", past_constraints: PC, ..Default::default() },
        ],
    )
    .expect("OR definition is well-formed")
    .with_setup_hold(SETUP_TIME, HOLD_TIME)
});

cached!(nand_elem, {
    // Synchronous Nand Element: fires on clk unless both inputs arrived.
    // Table 3: 12 transitions, 4 states.
    Machine::new(
        "NAND",
        &["a", "b", "clk"],
        &["q"],
        9.8,
        13,
        &[
            EdgeDef { src: "idle", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, firing: "q", past_constraints: PC, ..Default::default() },
            EdgeDef { src: "idle", trigger: "a", dst: "a_arr", ..Default::default() },
            EdgeDef { src: "idle", trigger: "b", dst: "b_arr", ..Default::default() },
            EdgeDef { src: "a_arr", trigger: "a", dst: "a_arr", ..Default::default() },
            EdgeDef { src: "a_arr", trigger: "b", dst: "ab_arr", ..Default::default() },
            EdgeDef { src: "a_arr", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, firing: "q", past_constraints: PC, ..Default::default() },
            EdgeDef { src: "b_arr", trigger: "b", dst: "b_arr", ..Default::default() },
            EdgeDef { src: "b_arr", trigger: "a", dst: "ab_arr", ..Default::default() },
            EdgeDef { src: "b_arr", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, firing: "q", past_constraints: PC, ..Default::default() },
            EdgeDef { src: "ab_arr", trigger: "a", dst: "ab_arr", ..Default::default() },
            EdgeDef { src: "ab_arr", trigger: "b", dst: "ab_arr", ..Default::default() },
            EdgeDef { src: "ab_arr", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, past_constraints: PC, ..Default::default() },
        ],
    )
    .expect("NAND definition is well-formed")
    .with_setup_hold(SETUP_TIME, HOLD_TIME)
});

cached!(nor_elem, {
    // Synchronous Nor Element: fires on clk only if no input arrived.
    // Table 3: 6 transitions, 2 states.
    Machine::new(
        "NOR",
        &["a", "b", "clk"],
        &["q"],
        8.6,
        12,
        &[
            EdgeDef { src: "idle", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, firing: "q", past_constraints: PC, ..Default::default() },
            EdgeDef { src: "idle", trigger: "a", dst: "arr", ..Default::default() },
            EdgeDef { src: "idle", trigger: "b", dst: "arr", ..Default::default() },
            EdgeDef { src: "arr", trigger: "a", dst: "arr", ..Default::default() },
            EdgeDef { src: "arr", trigger: "b", dst: "arr", ..Default::default() },
            EdgeDef { src: "arr", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, past_constraints: PC, ..Default::default() },
        ],
    )
    .expect("NOR definition is well-formed")
    .with_setup_hold(SETUP_TIME, HOLD_TIME)
});

cached!(xor_elem, {
    // Synchronous Xor Element: fires on clk if exactly one input arrived;
    // a second pulse of the *other* input cancels back to idle.
    // Table 3: 9 transitions, 3 states.
    Machine::new(
        "XOR",
        &["a", "b", "clk"],
        &["q"],
        7.9,
        10,
        &[
            EdgeDef { src: "idle", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, past_constraints: PC, ..Default::default() },
            EdgeDef { src: "idle", trigger: "a", dst: "a_arr", ..Default::default() },
            EdgeDef { src: "idle", trigger: "b", dst: "b_arr", ..Default::default() },
            EdgeDef { src: "a_arr", trigger: "a", dst: "a_arr", ..Default::default() },
            EdgeDef { src: "a_arr", trigger: "b", dst: "idle", ..Default::default() },
            EdgeDef { src: "a_arr", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, firing: "q", past_constraints: PC, ..Default::default() },
            EdgeDef { src: "b_arr", trigger: "b", dst: "b_arr", ..Default::default() },
            EdgeDef { src: "b_arr", trigger: "a", dst: "idle", ..Default::default() },
            EdgeDef { src: "b_arr", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, firing: "q", past_constraints: PC, ..Default::default() },
        ],
    )
    .expect("XOR definition is well-formed")
    .with_setup_hold(SETUP_TIME, HOLD_TIME)
});

cached!(xnor_elem, {
    // Synchronous Xnor Element: fires on clk if both or neither arrived.
    // Table 3: 12 transitions, 4 states.
    Machine::new(
        "XNOR",
        &["a", "b", "clk"],
        &["q"],
        9.4,
        13,
        &[
            EdgeDef { src: "idle", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, firing: "q", past_constraints: PC, ..Default::default() },
            EdgeDef { src: "idle", trigger: "a", dst: "a_arr", ..Default::default() },
            EdgeDef { src: "idle", trigger: "b", dst: "b_arr", ..Default::default() },
            EdgeDef { src: "a_arr", trigger: "a", dst: "a_arr", ..Default::default() },
            EdgeDef { src: "a_arr", trigger: "b", dst: "ab_arr", ..Default::default() },
            EdgeDef { src: "a_arr", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, past_constraints: PC, ..Default::default() },
            EdgeDef { src: "b_arr", trigger: "b", dst: "b_arr", ..Default::default() },
            EdgeDef { src: "b_arr", trigger: "a", dst: "ab_arr", ..Default::default() },
            EdgeDef { src: "b_arr", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, past_constraints: PC, ..Default::default() },
            EdgeDef { src: "ab_arr", trigger: "a", dst: "ab_arr", ..Default::default() },
            EdgeDef { src: "ab_arr", trigger: "b", dst: "ab_arr", ..Default::default() },
            EdgeDef { src: "ab_arr", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, firing: "q", past_constraints: PC, ..Default::default() },
        ],
    )
    .expect("XNOR definition is well-formed")
    .with_setup_hold(SETUP_TIME, HOLD_TIME)
});

cached!(inv_elem, {
    // Synchronous Inverter: fires on clk only if no input pulse arrived.
    // Table 3: 4 transitions, 2 states.
    Machine::new(
        "INV",
        &["a", "clk"],
        &["q"],
        6.0,
        9,
        &[
            EdgeDef { src: "idle", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, firing: "q", past_constraints: PC, ..Default::default() },
            EdgeDef { src: "idle", trigger: "a", dst: "a_arr", ..Default::default() },
            EdgeDef { src: "a_arr", trigger: "a", dst: "a_arr", ..Default::default() },
            EdgeDef { src: "a_arr", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, past_constraints: PC, ..Default::default() },
        ],
    )
    .expect("INV definition is well-formed")
    .with_setup_hold(SETUP_TIME, HOLD_TIME)
});

cached!(dro_elem, {
    // Destructive readout (DRO / D flip-flop): stores a pulse on `a`, emits
    // it on `clk`. Table 3: 4 transitions, 2 states.
    Machine::new(
        "DRO",
        &["a", "clk"],
        &["q"],
        5.1,
        6,
        &[
            EdgeDef { src: "idle", trigger: "a", dst: "stored", ..Default::default() },
            EdgeDef { src: "idle", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, past_constraints: PC, ..Default::default() },
            EdgeDef { src: "stored", trigger: "a", dst: "stored", ..Default::default() },
            EdgeDef { src: "stored", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, firing: "q", past_constraints: PC, ..Default::default() },
        ],
    )
    .expect("DRO definition is well-formed")
    .with_setup_hold(SETUP_TIME, HOLD_TIME)
});

cached!(dro_sr_elem, {
    // DRO with set/reset: `set` stores, `rst` clears, `clk` reads
    // destructively. Table 3: 6 transitions, 2 states.
    Machine::new(
        "DRO_SR",
        &["set", "rst", "clk"],
        &["q"],
        5.1,
        8,
        &[
            EdgeDef { src: "idle", trigger: "set", dst: "stored", ..Default::default() },
            EdgeDef { src: "idle", trigger: "rst", dst: "idle", ..Default::default() },
            EdgeDef { src: "idle", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, past_constraints: PC, ..Default::default() },
            EdgeDef { src: "stored", trigger: "set", dst: "stored", ..Default::default() },
            EdgeDef { src: "stored", trigger: "rst", dst: "idle", ..Default::default() },
            EdgeDef { src: "stored", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, firing: "q", past_constraints: PC, ..Default::default() },
        ],
    )
    .expect("DRO_SR definition is well-formed")
    .with_setup_hold(SETUP_TIME, HOLD_TIME)
});

cached!(dro_c_elem, {
    // DRO with complementary outputs: on clk, fires `q` if a pulse was
    // stored, else `qn`. Table 3: 4 transitions, 2 states.
    Machine::new(
        "DRO_C",
        &["a", "clk"],
        &["q", "qn"],
        5.1,
        9,
        &[
            EdgeDef { src: "idle", trigger: "a", dst: "stored", ..Default::default() },
            EdgeDef { src: "idle", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, firing: "qn", past_constraints: PC, ..Default::default() },
            EdgeDef { src: "stored", trigger: "a", dst: "stored", ..Default::default() },
            EdgeDef { src: "stored", trigger: "clk", dst: "idle", transition_time: HOLD_TIME, firing: "q", past_constraints: PC, ..Default::default() },
        ],
    )
    .expect("DRO_C definition is well-formed")
    .with_setup_hold(SETUP_TIME, HOLD_TIME)
});

cached!(join2x2_elem, {
    // 2x2 Join: dual-rail primitive taking complements (a_t, a_f) and
    // (b_t, b_f) and firing one of tt/tf/ft/ff once one rail of each pair
    // has arrived (paper §5.2). Table 3: 20 transitions, 5 states.
    Machine::new(
        "JOIN2x2",
        &["a_t", "a_f", "b_t", "b_f"],
        &["tt", "tf", "ft", "ff"],
        6.0,
        14,
        &[
            EdgeDef { src: "idle", trigger: "a_t", dst: "at", transition_time: 1.0, ..Default::default() },
            EdgeDef { src: "idle", trigger: "a_f", dst: "af", transition_time: 1.0, ..Default::default() },
            EdgeDef { src: "idle", trigger: "b_t", dst: "bt", transition_time: 1.0, ..Default::default() },
            EdgeDef { src: "idle", trigger: "b_f", dst: "bf", transition_time: 1.0, ..Default::default() },
            EdgeDef { src: "at", trigger: "b_t", dst: "idle", transition_time: 2.0, firing: "tt", ..Default::default() },
            EdgeDef { src: "at", trigger: "b_f", dst: "idle", transition_time: 2.0, firing: "tf", ..Default::default() },
            EdgeDef { src: "at", trigger: "a_t", dst: "at", ..Default::default() },
            EdgeDef { src: "at", trigger: "a_f", dst: "at", ..Default::default() },
            EdgeDef { src: "af", trigger: "b_t", dst: "idle", transition_time: 2.0, firing: "ft", ..Default::default() },
            EdgeDef { src: "af", trigger: "b_f", dst: "idle", transition_time: 2.0, firing: "ff", ..Default::default() },
            EdgeDef { src: "af", trigger: "a_t", dst: "af", ..Default::default() },
            EdgeDef { src: "af", trigger: "a_f", dst: "af", ..Default::default() },
            EdgeDef { src: "bt", trigger: "a_t", dst: "idle", transition_time: 2.0, firing: "tt", ..Default::default() },
            EdgeDef { src: "bt", trigger: "a_f", dst: "idle", transition_time: 2.0, firing: "ft", ..Default::default() },
            EdgeDef { src: "bt", trigger: "b_t", dst: "bt", ..Default::default() },
            EdgeDef { src: "bt", trigger: "b_f", dst: "bt", ..Default::default() },
            EdgeDef { src: "bf", trigger: "a_t", dst: "idle", transition_time: 2.0, firing: "tf", ..Default::default() },
            EdgeDef { src: "bf", trigger: "a_f", dst: "idle", transition_time: 2.0, firing: "ff", ..Default::default() },
            EdgeDef { src: "bf", trigger: "b_t", dst: "bf", ..Default::default() },
            EdgeDef { src: "bf", trigger: "b_f", dst: "bf", ..Default::default() },
        ],
    )
    .expect("2x2 join definition is well-formed")
});

/// Every basic cell, paired with its Table-3 display name, in the paper's
/// row order.
pub fn all_cells() -> Vec<(&'static str, Arc<Machine>)> {
    vec![
        ("C", c_elem()),
        ("InvC", c_inv_elem()),
        ("M", m_elem()),
        ("S", s_elem()),
        ("JTL", jtl_elem()),
        ("And", and_elem()),
        ("Or", or_elem()),
        ("Nand", nand_elem()),
        ("Nor", nor_elem()),
        ("Xor", xor_elem()),
        ("Xnor", xnor_elem()),
        ("Inv", inv_elem()),
        ("DRO", dro_elem()),
        ("DRO SR", dro_sr_elem()),
        ("DRO C", dro_c_elem()),
        ("2x2 Join", join2x2_elem()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shapes() {
        // (name, size, states, transitions) from the paper's Table 3.
        let expected = [
            ("C", 6, 3, 6),
            ("InvC", 6, 3, 6),
            ("M", 2, 1, 2),
            ("S", 1, 1, 1),
            ("JTL", 1, 1, 1),
            ("And", 11, 4, 12),
            ("Or", 4, 2, 6),
            ("Nand", 12, 4, 12),
            ("Nor", 6, 2, 6),
            ("Xor", 9, 3, 9),
            ("Xnor", 12, 4, 12),
            ("Inv", 4, 2, 4),
            ("DRO", 4, 2, 4),
            ("DRO SR", 6, 2, 6),
            ("DRO C", 4, 2, 4),
            ("2x2 Join", 20, 5, 20),
        ];
        let cells = all_cells();
        assert_eq!(cells.len(), 16);
        for ((name, size, states, trans), (got_name, m)) in expected.iter().zip(&cells) {
            assert_eq!(name, got_name);
            assert_eq!(m.definition_size(), *size, "{name} size");
            assert_eq!(m.states().len(), *states, "{name} states");
            assert_eq!(m.transitions().len(), *trans, "{name} transitions");
        }
    }

    #[test]
    fn every_cell_starts_idle_and_fires_something() {
        for (name, m) in all_cells() {
            assert_eq!(m.states()[m.start().0], "idle", "{name}");
            assert!(
                m.transitions().iter().any(|t| !t.firing.is_empty()),
                "{name} fires"
            );
        }
    }

    #[test]
    fn cells_are_cached() {
        assert!(Arc::ptr_eq(&and_elem(), &and_elem()));
    }
}
