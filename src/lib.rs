//! # RLSE — a pulse-transfer level language for superconductor electronics
//!
//! RLSE is a Rust reproduction of **PyLSE** (PLDI 2022): an embedded
//! domain-specific language for describing, simulating, and formally
//! analyzing superconductor electronics (SCE) at the *pulse-transfer level*.
//!
//! SCE cells communicate through picosecond-wide single-flux-quantum (SFQ)
//! pulses rather than sustained voltage levels, which makes the cells
//! themselves stateful. RLSE models every cell as a *PyLSE Machine* — a Mealy
//! machine whose edges carry transition times, priorities, firing delays, and
//! constraints on the past — and models a design as a network of such
//! machines connected by stateless wires.
//!
//! The workspace is organized in layers, all re-exported here:
//!
//! * [`core`] — the machine formalism, circuits, the
//!   discrete-event simulator, behavioral "holes", validation, plotting.
//! * [`cells`] — the 16-cell standard library (C, InvC, M, S,
//!   JTL, And, Or, Nand, Nor, Xor, Xnor, Inv, DRO, DRO_SR, DRO_C, 2x2 Join)
//!   and wire-level helper functions.
//! * [`ta`] — timed automata, the PyLSE-Machine→TA translation,
//!   UPPAAL XML/TCTL export, and a zone-based (DBM) model checker.
//! * [`analog`] — a small SPICE-class transient simulator with
//!   an RSJ Josephson-junction model: the schematic-level baseline.
//! * [`designs`] — the paper's larger designs: min-max pair,
//!   bitonic sorters, race tree, synchronous and xSFQ full adders, and the
//!   memory hole.
//!
//! ## Quickstart
//!
//! Simulate a synchronous AND element (the paper's Figure 12):
//!
//! ```
//! use rlse::prelude::*;
//!
//! # fn main() -> Result<(), rlse::core::Error> {
//! let mut c = Circuit::new();
//! let a = c.inp_at(&[125.0, 175.0, 225.0, 275.0], "A");
//! let b = c.inp_at(&[75.0, 185.0, 225.0, 265.0], "B");
//! let clk = c.inp(50.0, 50.0, 6, "CLK")?;
//! let q = rlse::cells::and_s(&mut c, a, b, clk)?;
//! c.inspect(q, "Q");
//! let events = Simulation::new(c).run()?;
//! assert_eq!(events.times("Q"), &[209.2, 259.2, 309.2]);
//! # Ok(())
//! # }
//! ```

pub use rlse_analog as analog;
pub use rlse_cells as cells;
pub use rlse_core as core;
pub use rlse_designs as designs;
pub use rlse_ta as ta;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use rlse_cells::prelude::*;
    pub use rlse_core::prelude::*;
}
